// Unit tests: net module (addressing, flow keys, links, network fabric,
// trace recording).
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <unordered_set>

#include "check/reference_models.h"
#include "net/network.h"
#include "net/packet_pool.h"
#include "net/trace.h"
#include "sim/simulator.h"

namespace inband {
namespace {

TEST(Address, FormatIpv4) {
  EXPECT_EQ(format_ipv4(make_ipv4(10, 0, 0, 1)), "10.0.0.1");
  EXPECT_EQ(format_ipv4(make_ipv4(255, 255, 255, 255)), "255.255.255.255");
}

TEST(Address, FormatEndpoint) {
  EXPECT_EQ(format_endpoint({make_ipv4(1, 2, 3, 4), 80}), "1.2.3.4:80");
}

TEST(FlowKey, EqualityAndReversal) {
  const FlowKey f{{make_ipv4(10, 0, 0, 1), 1111},
                  {make_ipv4(10, 1, 0, 1), 80},
                  IpProto::kTcp};
  EXPECT_EQ(f, f);
  const FlowKey r = f.reversed();
  EXPECT_EQ(r.src, f.dst);
  EXPECT_EQ(r.dst, f.src);
  EXPECT_EQ(r.reversed(), f);
  EXPECT_NE(hash_flow(f), hash_flow(r));
}

TEST(FlowKey, HashSensitiveToEveryField) {
  const FlowKey base{{1, 1}, {2, 2}, IpProto::kTcp};
  FlowKey m = base;
  m.src.port = 3;
  EXPECT_NE(hash_flow(base), hash_flow(m));
  m = base;
  m.dst.addr = 9;
  EXPECT_NE(hash_flow(base), hash_flow(m));
  m = base;
  m.proto = IpProto::kUdp;
  EXPECT_NE(hash_flow(base), hash_flow(m));
}

TEST(FlowKey, SeedChangesHash) {
  const FlowKey f{{1, 1}, {2, 2}, IpProto::kTcp};
  EXPECT_NE(hash_flow(f, 1), hash_flow(f, 2));
}

TEST(FlowKey, HashSpreads) {
  std::unordered_set<std::uint64_t> hashes;
  for (std::uint16_t p = 0; p < 1000; ++p) {
    hashes.insert(hash_flow({{1, p}, {2, 80}, IpProto::kTcp}));
  }
  EXPECT_EQ(hashes.size(), 1000u);  // no collisions on this easy set
}

TEST(Packet, FlagsAndSizes) {
  Packet p;
  p.flags = tcpflag::kSyn | tcpflag::kAck;
  EXPECT_TRUE(p.has(tcpflag::kSyn));
  EXPECT_TRUE(p.has(tcpflag::kAck));
  EXPECT_FALSE(p.has(tcpflag::kFin));
  p.payload_len = 100;
  EXPECT_EQ(p.wire_size(), 152u);
  EXPECT_EQ(p.seq_len(), 101u);  // SYN consumes one
  p.flags |= tcpflag::kFin;
  EXPECT_EQ(p.seq_len(), 102u);
}

TEST(Packet, Format) {
  Packet p;
  p.flow = {{make_ipv4(10, 0, 0, 1), 5}, {make_ipv4(10, 1, 0, 1), 80},
            IpProto::kTcp};
  p.flags = tcpflag::kSyn;
  const auto s = format_packet(p);
  EXPECT_NE(s.find("10.0.0.1:5"), std::string::npos);
  EXPECT_NE(s.find("[S]"), std::string::npos);
}

class CollectingSink : public PacketSink {
 public:
  void handle_packet(Packet pkt) override { packets.push_back(std::move(pkt)); }
  std::vector<Packet> packets;
};

TEST(Link, SerializationDelayScalesWithSize) {
  Simulator sim;
  // 1 Gb/s: 1000 bytes = 8000 ns.
  Link link{sim, {1'000'000'000, 0, 0}};
  EXPECT_EQ(link.serialization_delay(1000), 8000);
  EXPECT_EQ(link.serialization_delay(1), 8);
}

TEST(Link, DeliveryTimeIncludesPropAndSerialization) {
  Simulator sim;
  Link link{sim, {1'000'000'000, us(10), 0}};
  CollectingSink sink;
  Packet p;
  p.payload_len = 948;  // wire = 1000 bytes -> 8us serialization
  ASSERT_TRUE(link.transmit(p, sink));
  sim.run();
  ASSERT_EQ(sink.packets.size(), 1u);
  EXPECT_EQ(sim.now(), us(18));
}

TEST(Link, BackToBackPacketsQueueBehindEachOther) {
  Simulator sim;
  Link link{sim, {1'000'000'000, 0, 0}};
  CollectingSink sink;
  Packet p;
  p.payload_len = 948;  // 8us each
  link.transmit(p, sink);
  link.transmit(p, sink);
  sim.run();
  EXPECT_EQ(sim.now(), us(16));  // second waits for the first
  EXPECT_EQ(sink.packets.size(), 2u);
}

TEST(Link, ExtraDelayAppliesToSubsequentPackets) {
  Simulator sim;
  Link link{sim, {1'000'000'000, 0, 0}};
  CollectingSink sink;
  link.set_extra_delay(ms(1));
  Packet p;
  p.payload_len = 948;
  link.transmit(p, sink);
  sim.run();
  EXPECT_EQ(sim.now(), ms(1) + us(8));
}

TEST(Link, QueueOverflowDrops) {
  Simulator sim;
  // Queue of 2000 bytes at 1 Gb/s = 16us of backlog allowed.
  Link link{sim, {1'000'000'000, 0, 2000}};
  CollectingSink sink;
  Packet p;
  p.payload_len = 948;  // 8us serialization each
  int accepted = 0;
  for (int i = 0; i < 10; ++i) {
    if (link.transmit(p, sink)) ++accepted;
  }
  EXPECT_LT(accepted, 10);
  EXPECT_EQ(link.drops(), 10u - static_cast<unsigned>(accepted));
  sim.run();
  EXPECT_EQ(sink.packets.size(), static_cast<std::size_t>(accepted));
}

TEST(Link, StatsCount) {
  Simulator sim;
  Link link{sim, {1'000'000'000, 0, 0}};
  CollectingSink sink;
  Packet p;
  p.payload_len = 100;
  link.transmit(p, sink);
  EXPECT_EQ(link.tx_packets(), 1u);
  EXPECT_EQ(link.tx_bytes(), p.wire_size());
}

class EchoHost : public Host {
 public:
  using Host::Host;
  void handle_packet(Packet pkt) override {
    received.push_back(pkt);
  }
  std::vector<Packet> received;
};

TEST(Network, RoutesByDeliveryAddress) {
  Simulator sim;
  Network net{sim};
  EchoHost a{sim, net, make_ipv4(10, 0, 0, 1), "a"};
  EchoHost b{sim, net, make_ipv4(10, 0, 0, 2), "b"};
  net.add_duplex_link(a.addr(), b.addr(), {1'000'000'000, us(5), 0});
  Packet p;
  p.flow = {{a.addr(), 1}, {b.addr(), 2}, IpProto::kTcp};
  a.send(p);
  sim.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_GT(b.received[0].pkt_id, 0u);
  EXPECT_EQ(b.received[0].sent_at, 0);
}

TEST(Network, SendToOverridesFlowDestination) {
  Simulator sim;
  Network net{sim};
  EchoHost a{sim, net, make_ipv4(10, 0, 0, 1), "a"};
  EchoHost b{sim, net, make_ipv4(10, 0, 0, 2), "b"};
  EchoHost c{sim, net, make_ipv4(10, 0, 0, 3), "c"};
  net.add_link(a.addr(), c.addr(), {1'000'000'000, us(5), 0});
  Packet p;
  // Flow says "to b", but we deliver to c — the LB forwarding pattern.
  p.flow = {{a.addr(), 1}, {b.addr(), 2}, IpProto::kTcp};
  a.send_to(c.addr(), p);
  sim.run();
  EXPECT_EQ(b.received.size(), 0u);
  ASSERT_EQ(c.received.size(), 1u);
  EXPECT_EQ(c.received[0].flow.dst.addr, b.addr());
}

TEST(Network, PacketIdsAreUniqueAndIncreasing) {
  Simulator sim;
  Network net{sim};
  EchoHost a{sim, net, 1, "a"};
  EchoHost b{sim, net, 2, "b"};
  net.add_link(1, 2, {1'000'000'000, 0, 0});
  Packet p;
  p.flow = {{1, 1}, {2, 2}, IpProto::kTcp};
  a.send(p);
  a.send(p);
  sim.run();
  ASSERT_EQ(b.received.size(), 2u);
  EXPECT_LT(b.received[0].pkt_id, b.received[1].pkt_id);
}

TEST(Network, DropCounting) {
  Simulator sim;
  Network net{sim};
  EchoHost a{sim, net, 1, "a"};
  EchoHost b{sim, net, 2, "b"};
  net.add_link(1, 2, {1'000'000'000, 0, 100});  // tiny queue
  Packet p;
  p.payload_len = 1400;
  p.flow = {{1, 1}, {2, 2}, IpProto::kTcp};
  for (int i = 0; i < 20; ++i) a.send(p);
  const NetStats stats = net.stats();
  EXPECT_GT(stats.packets_dropped, 0u);
  EXPECT_EQ(stats.packets_sent, 20u);
}

TEST(Network, HasLink) {
  Simulator sim;
  Network net{sim};
  EchoHost a{sim, net, 1, "a"};
  EchoHost b{sim, net, 2, "b"};
  net.add_link(1, 2, {});
  EXPECT_TRUE(net.has_link(1, 2));
  EXPECT_FALSE(net.has_link(2, 1));
}

TEST(Trace, RecordsAndFilters) {
  Simulator sim;
  Network net{sim};
  EchoHost a{sim, net, 1, "a"};
  EchoHost b{sim, net, 2, "b"};
  EchoHost c{sim, net, 3, "c"};
  net.add_link(1, 2, {});
  net.add_link(2, 3, {});
  TraceRecorder trace{net, /*vantage=*/2};
  Packet p;
  p.flow = {{1, 5}, {2, 6}, IpProto::kTcp};
  a.send(p);  // 1 -> 2 : vantage sees (arriving at 2)
  sim.run();
  Packet q;
  q.flow = {{2, 6}, {3, 7}, IpProto::kTcp};
  b.send(q);  // 2 -> 3 : vantage sees (departing 2)
  sim.run();
  EXPECT_EQ(trace.rows().size(), 2u);
}

TEST(Trace, SaveLoadRoundTrip) {
  Simulator sim;
  Network net{sim};
  EchoHost a{sim, net, 1, "a"};
  EchoHost b{sim, net, 2, "b"};
  net.add_link(1, 2, {1'000'000'000, us(3), 0});
  TraceRecorder trace{net};
  Packet p;
  p.flow = {{1, 1000}, {2, 80}, IpProto::kTcp};
  p.seq = 42;
  p.flags = tcpflag::kSyn;
  a.send(p);
  sim.run();

  const std::string path = testing::TempDir() + "/trace_roundtrip.csv";
  trace.save_csv(path);
  const auto rows = TraceRecorder::load_csv(path);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].flow, p.flow);
  EXPECT_EQ(rows[0].seq, 42u);
  EXPECT_EQ(rows[0].flags, tcpflag::kSyn);
  EXPECT_EQ(rows[0].hop_from, 1u);
  EXPECT_EQ(rows[0].hop_to, 2u);
}

TEST(Trace, LoadRejectsGarbage) {
  const std::string path = testing::TempDir() + "/trace_bad.csv";
  {
    std::ofstream f{path};
    f << "header\nnot,a,valid,row\n";
  }
  EXPECT_THROW(TraceRecorder::load_csv(path), std::runtime_error);
}


// --- link jitter ---

TEST(LinkJitter, AddsDelayButKeepsFifoOrder) {
  Simulator sim;
  LinkParams params{1'000'000'000, us(10), 0, us(20), 1.5, 99};
  Link link{sim, params};
  CollectingSink sink;
  Packet p;
  p.payload_len = 100;
  for (std::uint32_t i = 0; i < 200; ++i) {
    p.seq = i;  // transmit order marker (no Network to stamp pkt_id)
    link.transmit(p, sink);
  }
  while (sim.step()) {
  }
  ASSERT_EQ(sink.packets.size(), 200u);
  // Despite jitter, deliveries must preserve transmit (FIFO) order.
  for (std::size_t i = 1; i < sink.packets.size(); ++i) {
    EXPECT_LT(sink.packets[i - 1].seq, sink.packets[i].seq);
  }
}

TEST(LinkJitter, DelayStatistics) {
  Simulator sim;
  Link link{sim, {1'000'000'000, us(10), 0, us(20), 1.0, 5}};
  CollectingSink sink;
  std::vector<SimTime> deliveries;
  for (int i = 0; i < 200; ++i) {
    sim.run_until(i * ms(1));
    Packet p;
    p.payload_len = 948;  // base delay = 18us
    link.transmit(p, sink);
    sim.run();  // drain: single delivery event
    deliveries.push_back(sim.now() - i * ms(1));
  }
  SimTime min_d = deliveries[0];
  SimTime max_d = deliveries[0];
  for (SimTime d : deliveries) {
    EXPECT_GE(d, us(18));  // never faster than base
    min_d = std::min(min_d, d);
    max_d = std::max(max_d, d);
  }
  EXPECT_GT(max_d, min_d + us(10));  // jitter is real
  // Median extra delay is in the ballpark of the configured median.
  std::sort(deliveries.begin(), deliveries.end());
  const SimTime median_extra = deliveries[deliveries.size() / 2] - us(18);
  EXPECT_GT(median_extra, us(10));
  EXPECT_LT(median_extra, us(40));
}

TEST(LinkJitter, DeterministicForSameSeed) {
  auto run = [](std::uint64_t seed) {
    Simulator sim;
    Link link{sim, {1'000'000'000, us(10), 0, us(20), 1.2, seed}};
    CollectingSink sink;
    Packet p;
    p.payload_len = 50;
    std::vector<SimTime> times;
    for (int i = 0; i < 50; ++i) link.transmit(p, sink);
    while (!sim.stopped() && sim.step()) times.push_back(sim.now());
    return times;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(LinkJitter, ZeroJitterIsExact) {
  Simulator sim;
  Link link{sim, {1'000'000'000, us(10), 0, 0, 0.0, 1}};
  CollectingSink sink;
  Packet p;
  p.payload_len = 948;  // 8us serialization
  link.transmit(p, sink);
  sim.run();
  EXPECT_EQ(sim.now(), us(18));
}

// --- packet pool ---

TEST(PacketPool, AcquireReleaseRecycles) {
  PacketPool pool;
  Packet* first;
  {
    PacketRef ref = pool.acquire();
    first = &*ref;
    ref->payload_len = 999;
  }
  EXPECT_EQ(pool.stats().outstanding, 0u);
  {
    // The freed slot comes back (LIFO freelist) and arrives reset.
    PacketRef ref = pool.acquire();
    EXPECT_EQ(&*ref, first);
    EXPECT_EQ(ref->payload_len, 0u);
  }
  EXPECT_EQ(pool.stats().acquired, 2u);
  EXPECT_EQ(pool.stats().released, 2u);
}

TEST(PacketPool, ExhaustionGrowsByChunkAndRecyclesAfter) {
  PacketPool pool;
  std::vector<PacketRef> refs;
  const std::uint64_t chunk = PacketPool::kChunkPackets;
  for (std::uint64_t i = 0; i < chunk + 1; ++i) refs.push_back(pool.acquire());
  EXPECT_EQ(pool.stats().slots, 2 * chunk);  // second slab after exhaustion
  EXPECT_EQ(pool.stats().outstanding, chunk + 1);
  EXPECT_EQ(pool.stats().high_water, chunk + 1);
  refs.clear();
  EXPECT_EQ(pool.stats().outstanding, 0u);
  // Re-acquiring the same working set touches no new slab.
  for (std::uint64_t i = 0; i < chunk + 1; ++i) refs.push_back(pool.acquire());
  EXPECT_EQ(pool.stats().slots, 2 * chunk);
  EXPECT_EQ(pool.stats().high_water, chunk + 1);
}

TEST(PacketBatch, PushTakeClear) {
  PacketPool pool;
  PacketBatch batch;
  EXPECT_TRUE(batch.empty());
  for (std::uint32_t i = 0; i < PacketBatch::kCapacity; ++i) {
    PacketRef ref = pool.acquire();
    ref->seq = i;
    batch.push(std::move(ref));
  }
  EXPECT_TRUE(batch.full());
  PacketRef taken = batch.take(3);
  EXPECT_EQ(taken->seq, 3u);
  taken.reset();
  EXPECT_EQ(pool.stats().outstanding, PacketBatch::kCapacity - 1);
  batch.clear();  // releases every remaining ref back to the pool
  EXPECT_EQ(pool.stats().outstanding, 0u);
}

// --- batch send path ---

// Host that records per-packet arrival (id, time, carrying-batch size)
// through the native batch entry point.
class BatchRecordingHost : public Host {
 public:
  using Host::Host;
  struct Arrival {
    std::uint64_t pkt_id;
    SimTime at;
    std::uint32_t batch_size;
  };
  void handle_batch(PacketBatch&& batch) override {
    for (std::uint32_t i = 0; i < batch.size(); ++i) {
      arrivals.push_back({batch[i]->pkt_id, sim().now(), batch.size()});
    }
  }
  std::vector<Arrival> arrivals;
};

// Drives the same interleaved batch/scalar traffic through the new batch
// path (real simulator) and the pre-redesign per-packet oracle, over a
// jittered, queue-limited link. Delivery times, order, and drop counts must
// match bit-for-bit — the redesign's core contract.
TEST(PacketBatchPath, MatchesLegacyScalarTiming) {
  const LinkParams params{1'000'000'000, us(10), 3000, us(5), 0.8, 1234};
  Simulator sim;
  Network net{sim};
  BatchRecordingHost a{sim, net, 1, "a"};
  BatchRecordingHost b{sim, net, 2, "b"};
  net.add_link(1, 2, params);
  LegacyScalarSendPath oracle{params};

  const FlowKey flow{{1, 1000}, {2, 80}, IpProto::kTcp};
  SimTime t = 0;
  for (int round = 0; round < 200; ++round) {
    t += us(1) + (round % 7) * 100;
    sim.run_until(t);
    const std::uint32_t n =
        1 + static_cast<std::uint32_t>(round) % PacketBatch::kCapacity;
    PacketBatch batch;
    for (std::uint32_t j = 0; j < n; ++j) {
      PacketRef ref = net.pool().acquire();
      ref->flow = flow;
      ref->payload_len = (static_cast<std::uint32_t>(round) * 37 + j * 11) % 1000;
      batch.push(std::move(ref));
    }
    for (std::uint32_t j = 0; j < n; ++j) {
      Packet probe;
      probe.payload_len = (static_cast<std::uint32_t>(round) * 37 + j * 11) % 1000;
      oracle.send(t, probe.wire_size());
    }
    a.send_batch(2, batch);
    if (round % 3 == 0) {
      // Interleave a scalar send: both forms share the pkt_id counter and
      // the link FIFO.
      Packet p;
      p.flow = flow;
      p.payload_len = 200;
      a.send(p);
      Packet probe;
      probe.payload_len = 200;
      oracle.send(t, probe.wire_size());
    }
  }
  sim.run();
  oracle.release_held(sim.now());

  const auto& expected = oracle.deliveries();
  ASSERT_EQ(b.arrivals.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(b.arrivals[i].pkt_id, expected[i].pkt_id) << "at index " << i;
    EXPECT_EQ(b.arrivals[i].at, expected[i].deliver_at) << "at index " << i;
  }
  const NetStats stats = net.stats();
  EXPECT_EQ(stats.packets_sent, oracle.packets_sent());
  EXPECT_EQ(stats.packets_dropped, oracle.packets_dropped());
}

// Deterministic per-packet verdicts keyed on the stamped pkt_id: both paths
// stamp the same id sequence, so both apply the same drop/hold/duplicate
// pattern. Exercises BatchVerdict dispatch (drop recycles the slot, holds
// re-clock through the simulator, duplicates ride pooled clones).
class PatternInterceptor : public SendInterceptor {
 public:
  SendVerdict on_send(const Packet& pkt, Ipv4, Ipv4) override {
    return verdict_for(pkt.pkt_id);
  }
  static SendVerdict verdict_for(std::uint64_t id) {
    SendVerdict v;
    if (id % 5 == 0) v.drop = true;
    if (id % 7 == 0) v.hold = us(3) + 1;
    if (id % 11 == 0) v.duplicate_hold = us(2) + 1;
    return v;
  }
};

TEST(PacketBatchPath, BatchVerdictsMatchLegacyScalarPath) {
  const LinkParams params{1'000'000'000, us(10), 0, 0, 0.0, 1};
  Simulator sim;
  Network net{sim};
  BatchRecordingHost a{sim, net, 1, "a"};
  BatchRecordingHost b{sim, net, 2, "b"};
  net.add_link(1, 2, params);
  PatternInterceptor interceptor;
  net.set_interceptor(&interceptor);
  LegacyScalarSendPath oracle{params};

  const FlowKey flow{{1, 1000}, {2, 80}, IpProto::kTcp};
  SimTime t = 0;
  std::uint64_t oracle_id = 1;  // mirrors Network's pkt_id stamping
  for (int round = 0; round < 100; ++round) {
    t += us(1) + (round % 5) * 100;
    sim.run_until(t);
    const std::uint32_t n = 1 + static_cast<std::uint32_t>(round) % 13;
    PacketBatch batch;
    for (std::uint32_t j = 0; j < n; ++j) {
      PacketRef ref = net.pool().acquire();
      ref->flow = flow;
      ref->payload_len = 100;
      batch.push(std::move(ref));
    }
    a.send_batch(2, batch);
    for (std::uint32_t j = 0; j < n; ++j) {
      Packet probe;
      probe.payload_len = 100;
      oracle.send(t, probe.wire_size(),
                  PatternInterceptor::verdict_for(oracle_id++));
    }
  }
  sim.run();
  oracle.release_held(sim.now());

  const auto& expected = oracle.deliveries();
  ASSERT_EQ(b.arrivals.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(b.arrivals[i].pkt_id, expected[i].pkt_id) << "at index " << i;
    EXPECT_EQ(b.arrivals[i].at, expected[i].deliver_at) << "at index " << i;
  }
  // Dropped ids never arrive; duplicated ids arrive twice.
  std::uint64_t dup_arrivals = 0;
  for (const auto& arr : b.arrivals) {
    EXPECT_NE(arr.pkt_id % 5, 0u);
    if (arr.pkt_id % 11 == 0) ++dup_arrivals;
  }
  EXPECT_GT(dup_arrivals, 0u);
  EXPECT_EQ(dup_arrivals % 2, 0u);
  net.set_interceptor(nullptr);
}

// A legacy sink that only overrides handle_packet still receives batched
// traffic through the default unbatching shim.
TEST(PacketBatchPath, DefaultShimDeliversToScalarSinks) {
  Simulator sim;
  Network net{sim};
  EchoHost a{sim, net, 1, "a"};
  EchoHost b{sim, net, 2, "b"};  // overrides handle_packet only
  net.add_link(1, 2, {1'000'000'000, us(5), 0});
  PacketBatch batch;
  for (std::uint32_t j = 0; j < 4; ++j) {
    PacketRef ref = net.pool().acquire();
    ref->flow = {{1, 1}, {2, 2}, IpProto::kTcp};
    ref->seq = j;
    batch.push(std::move(ref));
  }
  EXPECT_EQ(a.send_batch(2, batch), 4u);
  sim.run();
  ASSERT_EQ(b.received.size(), 4u);
  for (std::uint32_t j = 0; j < 4; ++j) EXPECT_EQ(b.received[j].seq, j);
  EXPECT_EQ(net.pool().stats().outstanding, 0u);
}

TEST(PacketBatchPath, NetStatsTracksBatchesAndPool) {
  Simulator sim;
  Network net{sim};
  BatchRecordingHost a{sim, net, 1, "a"};
  BatchRecordingHost b{sim, net, 2, "b"};
  net.add_link(1, 2, {1'000'000'000, us(5), 0});
  for (std::uint32_t n : {3u, 7u, 2u}) {
    PacketBatch batch;
    for (std::uint32_t j = 0; j < n; ++j) {
      PacketRef ref = net.pool().acquire();
      ref->flow = {{1, 1}, {2, 2}, IpProto::kTcp};
      batch.push(std::move(ref));
    }
    a.send_batch(2, batch);
  }
  sim.run();
  const NetStats stats = net.stats();
  EXPECT_EQ(stats.packets_sent, 12u);
  EXPECT_EQ(stats.batches, 3u);
  EXPECT_EQ(stats.batch_packets, 12u);
  EXPECT_EQ(stats.max_batch, 7u);
  EXPECT_EQ(stats.pool.outstanding, 0u);
  EXPECT_GE(stats.pool.high_water, 7u);
  EXPECT_EQ(stats.pool.acquired, stats.pool.released);
}

}  // namespace
}  // namespace inband
