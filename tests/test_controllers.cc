// Controller-conformance suite: every WeightController registered in the
// zoo (core/controller_zoo.h) is held to the same laws, whatever its control
// strategy:
//
//  * decisions are well-formed — a weight vector is non-negative, normalized
//    and full-width; a shift names a real victim with fraction in (0, 1];
//  * no healthy-server starvation — under a persistent skew every backend
//    keeps a strictly positive share (the weight-vector laws keep their
//    configured floor; the α law's drain is bounded by what it is fed);
//  * purity/determinism — two instances fed the identical (samples, weights)
//    stream emit the identical decision stream and identical digest_state,
//    and two same-seed cluster-rig runs produce the same rig digest;
//  * registry sanity — names round-trip and the factory builds what it says.
//
// A controller added to controller_registry() is automatically subjected to
// all of this; nothing here names a concrete law except the registry test.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "check/state_digest.h"
#include "core/controller_zoo.h"
#include "core/gradient_controller.h"
#include "core/server_latency_tracker.h"
#include "scenario/cluster_rig.h"

namespace inband {
namespace {

constexpr std::size_t kBackends = 4;
constexpr SimTime kTick = us(500);
constexpr int kSteps = 400;  // 200ms of stream: plenty of control epochs

// One recorded decision, weight vector deep-copied for later comparison.
struct LoggedDecision {
  int step;
  BackendId from;
  double fraction;
  bool is_vector;
  std::vector<double> weights;
  double worst_score_ns;
  double best_score_ns;
};

// Drives one controller with a deterministic synthetic score stream and the
// abstract policy loop: the current weight vector starts uniform, adopts any
// vector decision wholesale, and applies a shift decision the way the
// shift-slots mechanism does to shares (victim loses `fraction` of total,
// spread evenly over the rest). Backend 0 turns slow mid-stream and stays
// slow — the persistent-skew scenario the starvation law cares about.
std::vector<LoggedDecision> drive(WeightController& controller) {
  ServerLatencyTracker tracker{kBackends};
  std::vector<double> weights(kBackends, 1.0 / kBackends);
  std::vector<LoggedDecision> log;
  for (int step = 0; step < kSteps; ++step) {
    const SimTime now = kTick * (step + 1);
    for (std::size_t b = 0; b < kBackends; ++b) {
      // Deterministic per-backend jitter; backend 0 slow from step 100 on.
      SimTime sample = us(100) + us(7) * static_cast<SimTime>(b) +
                       us((step * 13 + static_cast<int>(b) * 29) % 23);
      if (b == 0 && step >= 100) sample += ms(1);
      tracker.record(static_cast<BackendId>(b), now, sample);
    }
    const auto decision = controller.control_step(tracker, weights, now);
    if (!decision.has_value()) continue;

    LoggedDecision entry;
    entry.step = step;
    entry.from = decision->from;
    entry.fraction = decision->fraction;
    entry.is_vector = decision->is_weight_vector();
    entry.worst_score_ns = decision->worst_score_ns;
    entry.best_score_ns = decision->best_score_ns;
    if (decision->is_weight_vector()) {
      entry.weights = *decision->weights;
      weights = *decision->weights;
    } else {
      // shift_slots share semantics, in the abstract.
      const double taken = decision->fraction;
      weights[decision->from] = std::max(0.0, weights[decision->from] - taken);
      double total = 0.0;
      for (const double w : weights) total += w;
      for (double& w : weights) w /= total;
    }
    log.push_back(std::move(entry));
  }
  return log;
}

class ConformanceTest : public testing::TestWithParam<ControllerKind> {
 protected:
  static std::unique_ptr<WeightController> make() {
    ControllerZooConfig cfg;
    cfg.kind = GetParam();
    // Uniform, mildly aggressive settings so every law actually fires
    // within the 200ms stream.
    cfg.alpha.min_samples = 2;
    cfg.alpha.cooldown = us(500);
    cfg.knapsack.min_samples = 2;
    cfg.gradient.min_samples = 2;
    cfg.shortest_queue.min_samples = 2;
    return make_controller(cfg);
  }
};

TEST_P(ConformanceTest, DecisionsAreWellFormed) {
  auto controller = make();
  const auto log = drive(*controller);
  ASSERT_FALSE(log.empty()) << controller->name()
                            << " never fired on a 10x persistent skew";
  for (const auto& d : log) {
    EXPECT_LT(d.from, kBackends);
    EXPECT_GE(d.worst_score_ns, d.best_score_ns);
    if (d.is_vector) {
      ASSERT_EQ(d.weights.size(), kBackends);
      double sum = 0.0;
      for (const double w : d.weights) {
        EXPECT_GE(w, 0.0);
        sum += w;
      }
      EXPECT_NEAR(sum, 1.0, 1e-9);
    } else {
      EXPECT_GT(d.fraction, 0.0);
      EXPECT_LE(d.fraction, 1.0);
    }
  }
  EXPECT_EQ(controller->shifts(), log.size());
}

TEST_P(ConformanceTest, NoHealthyServerStarvation) {
  auto controller = make();
  const auto log = drive(*controller);
  ASSERT_FALSE(log.empty());
  // Weight-vector laws must keep every healthy backend above a live floor —
  // the slow server included (it is slow, not dead; starving it would blind
  // the feedback loop to its recovery).
  for (const auto& d : log) {
    if (!d.is_vector) continue;
    for (std::size_t b = 0; b < kBackends; ++b) {
      EXPECT_GE(d.weights[b], 0.015)
          << controller->name() << " starved backend " << b << " at step "
          << d.step;
    }
  }
}

TEST_P(ConformanceTest, PureFunctionOfStreamAndSeed) {
  // Two fresh instances, identical stream: identical decision log and
  // identical internal state digest. This is the purity contract that lets
  // the rig digest-check treat controllers like any other subsystem.
  auto first = make();
  auto second = make();
  const auto log_a = drive(*first);
  const auto log_b = drive(*second);
  ASSERT_EQ(log_a.size(), log_b.size());
  for (std::size_t i = 0; i < log_a.size(); ++i) {
    EXPECT_EQ(log_a[i].step, log_b[i].step);
    EXPECT_EQ(log_a[i].from, log_b[i].from);
    EXPECT_EQ(log_a[i].fraction, log_b[i].fraction);
    EXPECT_EQ(log_a[i].is_vector, log_b[i].is_vector);
    EXPECT_EQ(log_a[i].weights, log_b[i].weights);
    EXPECT_EQ(log_a[i].worst_score_ns, log_b[i].worst_score_ns);
    EXPECT_EQ(log_a[i].best_score_ns, log_b[i].best_score_ns);
  }
  StateDigest da;
  StateDigest db;
  first->digest_state(da);
  second->digest_state(db);
  EXPECT_EQ(da.value(), db.value());
}

TEST_P(ConformanceTest, SameSeedRigRunsReproduce) {
  // Full-loop determinism: the controller inside the real policy, table and
  // traffic. Two same-seed runs must agree on the complete rig digest.
  ClusterRigConfig cfg;
  cfg.mode = LbMode::kInband;
  cfg.inband.controller_kind = GetParam();
  cfg.num_servers = 3;
  cfg.num_client_hosts = 2;
  cfg.duration = ms(300);
  cfg.inject_time = ms(150);
  cfg.seed = 7;
  cfg.client.connections = 4;
  cfg.client.pipeline = 4;
  cfg.server.workers = 8;
  cfg.maglev_table_size = 1021;
  cfg.share_sample_interval = ms(5);
  cfg.inband.ensemble.epoch = ms(16);
  cfg.inband.tracker.ewma_tau = ms(2);
  std::uint64_t digests[2];
  std::uint64_t updates[2];
  for (int run = 0; run < 2; ++run) {
    ClusterRig rig{cfg};
    rig.run();
    digests[run] = rig.state_digest();
    updates[run] = rig.inband_policy()->controller().shifts();
  }
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(updates[0], updates[1]);
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, ConformanceTest, testing::ValuesIn(controller_registry()),
    [](const testing::TestParamInfo<ControllerKind>& param) {
      std::string name = controller_kind_name(param.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// --- registry + factory sanity ---

TEST(ControllerRegistry, NamesRoundTripAndAreUnique) {
  const auto& kinds = controller_registry();
  ASSERT_GE(kinds.size(), 4u);  // the zoo the ablation sweeps
  std::vector<std::string> names;
  for (const ControllerKind kind : kinds) {
    const std::string name = controller_kind_name(kind);
    EXPECT_NE(name, "?");
    const auto parsed = controller_kind_from_name(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, kind);
    for (const auto& seen : names) EXPECT_NE(seen, name);
    names.push_back(name);
  }
  EXPECT_FALSE(controller_kind_from_name("no-such-law").has_value());
}

TEST(ControllerRegistry, FactoryBuildsWhatItNames) {
  for (const ControllerKind kind : controller_registry()) {
    ControllerZooConfig cfg;
    cfg.kind = kind;
    const auto controller = make_controller(cfg);
    ASSERT_NE(controller, nullptr);
    EXPECT_STREQ(controller->name(), controller_kind_name(kind));
    EXPECT_EQ(controller->shifts(), 0u);
    EXPECT_EQ(controller->last_shift_time(), kNoTime);
  }
}

TEST(ControllerRegistry, StaleFactoryForcesPositiveRefresh) {
  ControllerZooConfig cfg;
  cfg.kind = ControllerKind::kShortestQueueStale;
  cfg.shortest_queue.view_refresh = 0;  // factory must not build a fresh law
  const auto controller = make_controller(cfg);
  EXPECT_STREQ(controller->name(), "shortest-queue-stale");
}

// --- shared weight-vector helpers ---

TEST(WeightHelpers, FloorAndNormalizeIsScaleInvariant) {
  std::vector<double> a{1e-6, 2e-6, 4e-6};
  std::vector<double> b{1.0, 2.0, 4.0};
  floor_and_normalize(a, 0.05);
  floor_and_normalize(b, 0.05);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-12);
  double sum = 0.0;
  for (const double v : a) {
    EXPECT_GE(v, 0.05);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_LT(a[0], a[1]);
  EXPECT_LT(a[1], a[2]);
}

TEST(WeightHelpers, FloorAndNormalizeDegenerateCollapsesToUniform) {
  std::vector<double> zeros{0.0, 0.0, 0.0, 0.0};
  floor_and_normalize(zeros, 0.02);
  for (const double v : zeros) EXPECT_DOUBLE_EQ(v, 0.25);
  std::vector<double> negatives{-1.0, -2.0};
  floor_and_normalize(negatives, 0.02);
  for (const double v : negatives) EXPECT_DOUBLE_EQ(v, 0.5);
}

TEST(WeightHelpers, FloorClampedSoMassSurvives) {
  // A floor of 0.9 with 4 entries would demand 3.6 of mass; the helper
  // clamps to 1/(2n) and still normalizes.
  std::vector<double> w{1.0, 2.0, 3.0, 4.0};
  floor_and_normalize(w, 0.9);
  double sum = 0.0;
  for (const double v : w) {
    EXPECT_GE(v, 0.125 - 1e-12);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(WeightHelpers, SimplexProjectionProjects) {
  std::vector<double> scratch;
  std::vector<double> w{0.9, 0.4, -0.2};
  project_to_simplex(w, 1.0, scratch);
  double sum = 0.0;
  for (const double v : w) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // A point already on the simplex is a fixed point.
  std::vector<double> fixed{0.2, 0.3, 0.5};
  project_to_simplex(fixed, 1.0, scratch);
  EXPECT_NEAR(fixed[0], 0.2, 1e-12);
  EXPECT_NEAR(fixed[1], 0.3, 1e-12);
  EXPECT_NEAR(fixed[2], 0.5, 1e-12);
  // Interior points shift uniformly, so order is preserved exactly:
  // {0.6, 0.3, 0.5} - tau with tau = 0.4/3.
  std::vector<double> ordered{0.6, 0.3, 0.5};
  project_to_simplex(ordered, 1.0, scratch);
  EXPECT_NEAR(ordered[0], 0.6 - 0.4 / 3.0, 1e-12);
  EXPECT_NEAR(ordered[1], 0.3 - 0.4 / 3.0, 1e-12);
  EXPECT_NEAR(ordered[2], 0.5 - 0.4 / 3.0, 1e-12);
  // Clipping is allowed to create ties at zero: projecting {3, 1, 2} puts
  // all surplus on the max entry.
  std::vector<double> clipped{3.0, 1.0, 2.0};
  project_to_simplex(clipped, 1.0, scratch);
  EXPECT_NEAR(clipped[0], 1.0, 1e-12);
  EXPECT_NEAR(clipped[1], 0.0, 1e-12);
  EXPECT_NEAR(clipped[2], 0.0, 1e-12);
}

TEST(WeightHelpers, L1Distance) {
  EXPECT_DOUBLE_EQ(weight_l1_distance({0.5, 0.5}, {0.5, 0.5}), 0.0);
  EXPECT_DOUBLE_EQ(weight_l1_distance({1.0, 0.0}, {0.0, 1.0}), 2.0);
  EXPECT_DOUBLE_EQ(weight_l1_distance({0.5}, {0.5, 0.25}), 0.25);
}

// --- oscillation / convergence metrics (scenario/metrics.h) ---

TEST(ShareMetrics, TotalVariationSeesOscillationAndRest) {
  std::vector<ShareSnapshot> calm;
  std::vector<ShareSnapshot> herd;
  for (int i = 0; i < 10; ++i) {
    const SimTime t = ms(i);
    calm.push_back({t, {0.5, 0.5}});
    const bool odd = i % 2 == 1;
    herd.push_back({t, {odd ? 0.9 : 0.1, odd ? 0.1 : 0.9}});
  }
  EXPECT_DOUBLE_EQ(
      weight_total_variation_per_epoch(calm, ms(1), 0, ms(10)), 0.0);
  // 9 transitions of L1 distance 1.6 over 10 epochs.
  EXPECT_NEAR(weight_total_variation_per_epoch(herd, ms(1), 0, ms(10)),
              9 * 1.6 / 10.0, 1e-9);
  // Windowing excludes transitions outside [from, to).
  EXPECT_DOUBLE_EQ(
      weight_total_variation_per_epoch(herd, ms(1), ms(4), ms(5)), 0.0);
}

// Issue 10 claimed the per-server step decay was a shift derived from epochs
// capped at max_decay_epochs=63 — UB-adjacent on 64-bit and collapsing the
// step to zero before the documented cap. The law as implemented derives
// eta from min(epochs, cap) through a double sqrt: no shift, no UB, and the
// documented floor is step / sqrt(1 + 63) = step / 8. This regression test
// pins the epoch-63 boundary so neither failure mode can be introduced: at
// and past the cap the capped law's decisions must be bit-equal to a
// constant-step law running at exactly step/8 (the step never decays
// further, never collapses to zero), and strictly larger before the cap.
TEST(GradientDescent, StepDecayFloorsAtStepOverEightAtEpoch63) {
  GradientDescentConfig capped_cfg;
  capped_cfg.epoch = ms(2);
  capped_cfg.min_samples = 1;
  capped_cfg.deadband = 0.0;
  capped_cfg.warmup = 0;
  ASSERT_EQ(capped_cfg.max_decay_epochs, 63u);
  GradientDescentConfig floor_cfg = capped_cfg;
  floor_cfg.decay_step = false;
  floor_cfg.step = capped_cfg.step / 8.0;  // the documented eta floor
  GradientDescentController capped{capped_cfg};
  GradientDescentController floored{floor_cfg};

  ServerLatencyTracker capped_tracker{2};
  ServerLatencyTracker floored_tracker{2};
  const std::vector<double> uniform{0.5, 0.5};
  int compared_past_cap = 0;
  for (int epoch = 0; epoch < 200; ++epoch) {
    const SimTime now = ms(2) * (epoch + 1);
    for (ServerLatencyTracker* t : {&capped_tracker, &floored_tracker}) {
      t->record(0, now, us(200));  // persistent 2x gap: constant gradient
      t->record(1, now, us(100));
    }
    const std::uint64_t epochs_before = capped.epochs_seen(0);
    const auto a = capped.control_step(capped_tracker, uniform, now);
    const auto b = floored.control_step(floored_tracker, uniform, now);
    ASSERT_TRUE(a.has_value() && b.has_value()) << "epoch " << epoch;
    ASSERT_TRUE(a->is_weight_vector() && b->is_weight_vector());
    const double slow_a = (*a->weights)[0];
    const double slow_b = (*b->weights)[0];
    // Both laws move weight off the slow backend every epoch — the step
    // never collapses to zero, however long the calm stretch.
    EXPECT_LT(slow_a, 0.5);
    if (epochs_before >= 63) {
      // At the cap (and forever after): exactly the floored constant step.
      EXPECT_DOUBLE_EQ(slow_a, slow_b) << "epochs_before=" << epochs_before;
      ++compared_past_cap;
    } else {
      // Before the cap eta is strictly larger, so the capped law moves more.
      EXPECT_LT(slow_a, slow_b) << "epochs_before=" << epochs_before;
    }
  }
  EXPECT_EQ(capped.epochs_seen(0), 200u);
  EXPECT_GT(compared_past_cap, 100);
}

TEST(ShareMetrics, DrainDetectorFindsFirstCrossing) {
  std::vector<ShareSnapshot> history;
  history.push_back({ms(1), {0.5, 0.5}});
  history.push_back({ms(2), {0.3, 0.7}});
  history.push_back({ms(3), {0.04, 0.96}});
  history.push_back({ms(4), {0.03, 0.97}});
  EXPECT_EQ(share_drained_at(history, 0, 0.05, 0), ms(3));
  EXPECT_EQ(share_drained_at(history, 0, 0.05, ms(4)), ms(4));
  EXPECT_EQ(share_drained_at(history, 1, 0.05, 0), kNoTime);
  EXPECT_EQ(share_drained_at(history, 7, 0.05, 0), kNoTime);  // out of range
}

}  // namespace
}  // namespace inband
