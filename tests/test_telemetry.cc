// Unit tests: telemetry module (histogram, EWMA, sliding window, series).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

#include "telemetry/counters.h"
#include "telemetry/ewma.h"
#include "telemetry/histogram.h"
#include "telemetry/sliding_window.h"
#include "telemetry/time_series.h"
#include "util/rng.h"
#include "util/time.h"

namespace inband {
namespace {

// --- histogram bucket mechanics ---

TEST(Histogram, SmallValuesAreExact) {
  Histogram h;
  for (std::int64_t v = 0; v < 128; ++v) {
    EXPECT_EQ(h.bucket_low(h.index_for(v)), v);
    EXPECT_EQ(h.bucket_high(h.index_for(v)), v + 1);
  }
}

TEST(Histogram, IndexBoundsContainValue) {
  Histogram h;
  for (std::int64_t v : {std::int64_t{128}, std::int64_t{129},
                         std::int64_t{1000}, std::int64_t{4095},
                         std::int64_t{4096}, std::int64_t{65535},
                         std::int64_t{1'000'000}, std::int64_t{123'456'789},
                         sec(10)}) {
    const auto idx = h.index_for(v);
    EXPECT_LE(h.bucket_low(idx), v);
    EXPECT_GT(h.bucket_high(idx), v);
  }
}

TEST(Histogram, BucketsAreContiguous) {
  Histogram h;
  for (std::size_t i = 0; i + 1 < 6 * Histogram::kSubBucketCount; ++i) {
    EXPECT_EQ(h.bucket_high(i), h.bucket_low(i + 1)) << "bucket " << i;
  }
}

TEST(Histogram, RelativePrecisionBounded) {
  Histogram h;
  // Bucket width / value <= 2^-kSubBucketBits for values >= 128.
  for (std::int64_t v = 128; v < 100'000'000; v = v * 3 + 1) {
    const auto idx = h.index_for(v);
    const double width =
        static_cast<double>(h.bucket_high(idx) - h.bucket_low(idx));
    EXPECT_LE(width / static_cast<double>(v), 1.0 / 64 + 1e-12);
  }
}

// --- histogram stats ---

TEST(Histogram, EmptyIsSafe) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.percentile(0.5), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.record(us(100));
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.percentile(0.0), us(100));
  EXPECT_EQ(h.percentile(1.0), us(100));
  EXPECT_EQ(h.min(), us(100));
  EXPECT_EQ(h.max(), us(100));
}

TEST(Histogram, NegativeClampsToZero) {
  Histogram h;
  h.record(-5);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(Histogram, OverflowClampsAndCounts) {
  Histogram h{us(1000)};
  h.record(sec(5));
  EXPECT_EQ(h.clamped(), 1u);
  EXPECT_LE(h.max(), us(1000));
}

TEST(Histogram, PercentileAccuracyOnUniformData) {
  Histogram h;
  Rng rng{5};
  std::vector<std::int64_t> vals;
  for (int i = 0; i < 100'000; ++i) {
    const auto v = static_cast<std::int64_t>(rng.uniform_u64(1000, 1'000'000));
    vals.push_back(v);
    h.record(v);
  }
  std::sort(vals.begin(), vals.end());
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    const auto exact = vals[static_cast<std::size_t>(
        q * static_cast<double>(vals.size() - 1))];
    const auto approx = h.percentile(q);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                static_cast<double>(exact) * 0.02)
        << "q=" << q;
  }
}

TEST(Histogram, MeanMatchesArithmetic) {
  Histogram h;
  double sum = 0;
  for (int i = 1; i <= 1000; ++i) {
    h.record(i * 100);
    sum += i * 100;
  }
  EXPECT_NEAR(h.mean(), sum / 1000, 1e-9);
}

TEST(Histogram, MergeCombinesCounts) {
  Histogram a, b;
  a.record(us(10));
  b.record(us(1000));
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), us(10));
  EXPECT_EQ(a.max(), us(1000));
}

TEST(Histogram, MergeIntoEmpty) {
  Histogram a, b;
  b.record(42);
  a.merge(b);
  EXPECT_EQ(a.min(), 42);
  EXPECT_EQ(a.max(), 42);
}

TEST(Histogram, ResetClearsEverything) {
  Histogram h;
  h.record(100);
  h.reset();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.percentile(0.5), 0);
}

TEST(Histogram, RecordNWeights) {
  Histogram h;
  h.record_n(100, 99);
  h.record_n(1'000'000, 1);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_LT(h.percentile(0.5), 200);
  EXPECT_GT(h.percentile(0.995), 500'000);
}

// --- EWMA ---

TEST(Ewma, FirstSampleInitializes) {
  Ewma e{0.5};
  EXPECT_FALSE(e.initialized());
  e.record(10.0);
  EXPECT_TRUE(e.initialized());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, ConvergesTowardConstant) {
  Ewma e{0.25};
  e.record(0.0);
  for (int i = 0; i < 100; ++i) e.record(100.0);
  EXPECT_NEAR(e.value(), 100.0, 1e-6);
}

TEST(Ewma, GainControlsSpeed) {
  Ewma fast{0.5};
  Ewma slow{0.1};
  fast.record(0.0);
  slow.record(0.0);
  fast.record(100.0);
  slow.record(100.0);
  EXPECT_GT(fast.value(), slow.value());
}

TEST(DecayingEwma, DecaysWithTime) {
  DecayingEwma e{ms(1)};
  e.record(0, 100.0);
  e.record(ms(1), 0.0);  // one tau later: keep ~ e^-1
  EXPECT_NEAR(e.value(), 100.0 * std::exp(-1.0), 1.0);
}

TEST(DecayingEwma, RapidSamplesBarelyDecay) {
  DecayingEwma e{ms(10)};
  e.record(0, 100.0);
  e.record(10, 100.0);
  e.record(20, 0.0);  // dt=10ns << tau
  EXPECT_GT(e.value(), 99.0);
}

TEST(DecayingEwma, TracksLastSampleTime) {
  DecayingEwma e{ms(1)};
  EXPECT_EQ(e.last_sample_time(), kNoTime);
  e.record(us(5), 1.0);
  EXPECT_EQ(e.last_sample_time(), us(5));
}

// --- sliding window ---

TEST(SlidingWindow, ForgetsOldSamples) {
  SlidingWindowHistogram w{ms(10), 5};
  w.record(0, us(100));
  EXPECT_EQ(w.count(ms(1)), 1u);
  // After far more than a window, the old sample is gone.
  EXPECT_EQ(w.count(ms(50)), 0u);
}

TEST(SlidingWindow, KeepsSamplesWithinWindow) {
  SlidingWindowHistogram w{ms(10), 5};
  w.record(ms(1), us(1));
  w.record(ms(5), us(2));
  w.record(ms(9), us(3));
  EXPECT_EQ(w.count(ms(9)), 3u);
}

TEST(SlidingWindow, PartialExpiryBySlices) {
  SlidingWindowHistogram w{ms(10), 10};  // 1ms slices
  w.record(ms(0), 100);
  w.record(ms(9), 200);
  // At t=15ms, the slice containing t=0 rotated out, t=9 still in.
  EXPECT_EQ(w.count(ms(15)), 1u);
  EXPECT_EQ(w.percentile(ms(15), 0.5), 200);
}

TEST(SlidingWindow, PercentileOverWindow) {
  SlidingWindowHistogram w{ms(100), 10};
  for (int i = 1; i <= 100; ++i) w.record(ms(1), i * 1000);
  const auto p50 = w.percentile(ms(2), 0.5);
  EXPECT_NEAR(static_cast<double>(p50), 50'000.0, 2000.0);
}

TEST(SlidingWindow, ResetForgets) {
  SlidingWindowHistogram w{ms(10), 5};
  w.record(ms(1), 10);
  w.reset();
  EXPECT_EQ(w.count(ms(1)), 0u);
}

TEST(SlidingWindow, ResetClearsMergedScratch) {
  SlidingWindowHistogram w{ms(10), 5};
  w.record(us(1), 100);
  const Histogram& m = w.merged(us(2));
  EXPECT_EQ(m.count(), 1u);
  // The reference aliases the internal merge scratch; a reset must not
  // leave it reporting forgotten samples.
  w.reset();
  EXPECT_EQ(m.count(), 0u);
}

TEST(SlidingWindow, ResetKeepsTimeAnchor) {
  SlidingWindowHistogram w{ms(10), 5};
  w.record(ms(5), 100);
  w.reset();
  // The ring is empty but still anchored: the next record lands in the
  // slice its timestamp maps to, and the window keeps rotating from there.
  w.record(ms(6), 200);
  EXPECT_EQ(w.count(ms(6)), 1u);
  EXPECT_EQ(w.percentile(ms(6), 0.5), 200);
  EXPECT_EQ(w.count(ms(30)), 0u);
}

TEST(SlidingWindow, ResetStillRejectsTimeGoingBackwards) {
  // reset() must not un-anchor the clock: re-anchoring on the next record
  // would silently accept a non-monotonic time and shift the slice mapping.
  SlidingWindowHistogram w{ms(10), 5};
  w.record(ms(5), 100);
  w.reset();
  EXPECT_DEATH(w.record(0, 1), "time went backwards");
}

// --- time series ---

TEST(TimeSeries, BucketizeMean) {
  TimeSeries ts;
  ts.add(ms(1), 10.0);
  ts.add(ms(2), 20.0);
  ts.add(ms(11), 30.0);
  const auto rows = ts.bucketize(ms(10), Agg::kMean);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].bucket_start, 0);
  EXPECT_DOUBLE_EQ(rows[0].value, 15.0);
  EXPECT_EQ(rows[0].count, 2u);
  EXPECT_DOUBLE_EQ(rows[1].value, 30.0);
}

TEST(TimeSeries, EmptyBucketsEmittedWithNaN) {
  TimeSeries ts;
  ts.add(ms(1), 1.0);
  ts.add(ms(25), 2.0);
  const auto rows = ts.bucketize(ms(10), Agg::kMean);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[1].count, 0u);
  EXPECT_TRUE(std::isnan(rows[1].value));
}

TEST(TimeSeries, BucketizeP95) {
  TimeSeries ts;
  for (int i = 1; i <= 100; ++i) ts.add(ms(1), i);
  const auto rows = ts.bucketize(ms(10), Agg::kP95);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_NEAR(rows[0].value, 95.0, 1.0);
}

TEST(TimeSeries, BucketizeMinMaxCount) {
  TimeSeries ts;
  ts.add(0, 5.0);
  ts.add(1, -2.0);
  EXPECT_DOUBLE_EQ(ts.bucketize(ms(1), Agg::kMin)[0].value, -2.0);
  EXPECT_DOUBLE_EQ(ts.bucketize(ms(1), Agg::kMax)[0].value, 5.0);
  EXPECT_DOUBLE_EQ(ts.bucketize(ms(1), Agg::kCount)[0].value, 2.0);
}

TEST(TimeSeries, UnsortedInputHandled) {
  TimeSeries ts;
  ts.add(ms(15), 2.0);
  ts.add(ms(1), 1.0);
  const auto rows = ts.bucketize(ms(10), Agg::kMean);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0].value, 1.0);
  EXPECT_DOUBLE_EQ(rows[1].value, 2.0);
}

TEST(ExactPercentile, InterpolatesBetweenRanks) {
  EXPECT_DOUBLE_EQ(exact_percentile({1.0, 2.0, 3.0, 4.0}, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(exact_percentile({1.0, 2.0, 3.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(exact_percentile({1.0, 2.0, 3.0}, 1.0), 3.0);
}

TEST(ExactPercentile, EmptyReturnsNaN) {
  EXPECT_TRUE(std::isnan(exact_percentile({}, 0.5)));
}

TEST(AggName, Names) {
  EXPECT_STREQ(agg_name(Agg::kP95), "p95");
  EXPECT_STREQ(agg_name(Agg::kMean), "mean");
}

// --- counters ---

TEST(Counters, GetCreatesAndIncrements) {
  CounterSet c;
  ++c.get("a");
  ++c.get("a");
  EXPECT_EQ(c.value("a"), 2u);
  EXPECT_EQ(c.value("missing"), 0u);
}

TEST(Counters, StableReferences) {
  CounterSet c;
  auto& a = c.get("a");
  c.get("b");
  c.get("c");
  ++a;
  EXPECT_EQ(c.value("a"), 1u);
}

TEST(Counters, SnapshotSortedByName) {
  CounterSet c;
  c.get("zeta") = 1;
  c.get("alpha") = 2;
  const auto snap = c.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].name, "alpha");
  EXPECT_EQ(snap[1].name, "zeta");
}

TEST(Counters, ResetZeroes) {
  CounterSet c;
  c.get("a") = 5;
  c.reset();
  EXPECT_EQ(c.value("a"), 0u);
}


// --- parameterized percentile accuracy across distributions ---

enum class Dist { kUniform, kLognormal, kPareto, kBimodal };

class HistogramAccuracy
    : public testing::TestWithParam<std::tuple<Dist, double>> {};

TEST_P(HistogramAccuracy, WithinRelativePrecision) {
  const auto [dist, q] = GetParam();
  Histogram h;
  Rng rng{31};
  std::vector<std::int64_t> vals;
  vals.reserve(50'000);
  for (int i = 0; i < 50'000; ++i) {
    std::int64_t v = 0;
    switch (dist) {
      case Dist::kUniform:
        v = static_cast<std::int64_t>(rng.uniform_u64(us(10), ms(10)));
        break;
      case Dist::kLognormal:
        v = static_cast<std::int64_t>(
            rng.lognormal_median(static_cast<double>(us(200)), 0.7));
        break;
      case Dist::kPareto:
        v = static_cast<std::int64_t>(
            rng.pareto(static_cast<double>(us(50)), 1.3));
        break;
      case Dist::kBimodal:
        v = rng.bernoulli(0.9)
                ? static_cast<std::int64_t>(us(100))
                : static_cast<std::int64_t>(ms(2));
        break;
    }
    v = std::min<std::int64_t>(v, sec(15));
    vals.push_back(v);
    h.record(v);
  }
  std::sort(vals.begin(), vals.end());
  const auto exact = vals[std::min(
      vals.size() - 1,
      static_cast<std::size_t>(std::ceil(q * static_cast<double>(vals.size()))))];
  const auto approx = h.percentile(q);
  // Log-bucket precision: <= ~2/64 relative error plus one rank of slack.
  EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
              std::max(4.0, static_cast<double>(exact) * 0.04))
      << "dist=" << static_cast<int>(dist) << " q=" << q;
}

INSTANTIATE_TEST_SUITE_P(
    DistributionsAndQuantiles, HistogramAccuracy,
    testing::Combine(testing::Values(Dist::kUniform, Dist::kLognormal,
                                     Dist::kPareto, Dist::kBimodal),
                     testing::Values(0.5, 0.9, 0.95, 0.99, 0.999)));

// Sliding-window invariant across slice counts: a sample is queryable for
// at least window*(slices-1)/slices and at most window + one slice.
class SlidingWindowRetention : public testing::TestWithParam<int> {};

TEST_P(SlidingWindowRetention, RetentionBounds) {
  const int slices = GetParam();
  const SimTime window = ms(10);
  SlidingWindowHistogram w{window, slices};
  const SimTime slice_len = window / slices;
  w.record(0, 1234);
  // Still present just before the guaranteed retention boundary.
  EXPECT_EQ(w.count(window - slice_len - 1), 1u);
  // Definitely gone after window + one slice.
  SlidingWindowHistogram w2{window, slices};
  w2.record(0, 1234);
  EXPECT_EQ(w2.count(window + slice_len), 0u);
}

INSTANTIATE_TEST_SUITE_P(SliceCounts, SlidingWindowRetention,
                         testing::Values(2, 4, 8, 10));

}  // namespace
}  // namespace inband
