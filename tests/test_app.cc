// Unit tests: application layer (KV protocol, variability injectors,
// KV server, memtier-style client, bulk flows).
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "app/bulk_flow.h"
#include "app/kv_client.h"
#include "app/kv_server.h"
#include "scenario/metrics.h"
#include "telemetry/time_series.h"

namespace inband {
namespace {

constexpr Ipv4 kClientAddr = make_ipv4(10, 0, 0, 1);
constexpr Ipv4 kServerAddr = make_ipv4(10, 0, 0, 2);

// --- protocol ---

TEST(KvProtocol, WireSizes) {
  EXPECT_EQ(kv_request_wire_size(KvOp::kGet, 0), kKvRequestHeader);
  EXPECT_EQ(kv_request_wire_size(KvOp::kSet, 100), kKvRequestHeader + 100);
  KvMessage resp;
  resp.kind = KvKind::kResponse;
  resp.op = KvOp::kGet;
  resp.hit = true;
  resp.value_len = 256;
  EXPECT_EQ(kv_response_wire_size(resp), kKvResponseHeader + 256);
  resp.hit = false;
  EXPECT_EQ(kv_response_wire_size(resp), kKvResponseHeader);
  resp.op = KvOp::kSet;
  EXPECT_EQ(kv_response_wire_size(resp), kKvResponseHeader);
}

TEST(KvProtocol, ResponseEchoesRequestFields) {
  KvMessage req;
  req.id = 99;
  req.key = 1234;
  req.op = KvOp::kGet;
  req.created_at = us(55);
  const auto resp = make_kv_response(req, true, 512);
  EXPECT_EQ(resp->kind, KvKind::kResponse);
  EXPECT_EQ(resp->id, 99u);
  EXPECT_EQ(resp->key, 1234u);
  EXPECT_TRUE(resp->hit);
  EXPECT_EQ(resp->value_len, 512u);
  EXPECT_EQ(resp->created_at, us(55));
}

// --- variability injectors ---

TEST(Variability, StepDelayActiveOnlyInWindow) {
  StepDelayInjector inj{ms(10), us(500), ms(20)};
  EXPECT_EQ(inj.extra_service_time(ms(5), us(10)), 0);
  EXPECT_EQ(inj.extra_service_time(ms(10), us(10)), us(500));
  EXPECT_EQ(inj.extra_service_time(ms(15), us(10)), us(500));
  EXPECT_EQ(inj.extra_service_time(ms(20), us(10)), 0);
}

TEST(Variability, GcPauseFreezesPeriodically) {
  GcPauseInjector inj{ms(100), ms(5)};
  // During the pause window.
  EXPECT_EQ(inj.frozen_until(ms(2)), ms(5));
  EXPECT_EQ(inj.frozen_until(ms(102)), ms(105));
  // Outside.
  EXPECT_EQ(inj.frozen_until(ms(50)), 0);
}

TEST(Variability, GcPausePhaseShift) {
  GcPauseInjector inj{ms(100), ms(5), ms(30)};
  EXPECT_EQ(inj.frozen_until(ms(2)), 0);    // before phase, no pause yet
  EXPECT_EQ(inj.frozen_until(ms(31)), ms(35));
}

TEST(Variability, HeavyTailRespectsProbabilityAndCap) {
  HeavyTailNoiseInjector inj{0.1, us(100), 1.5, ms(2)};
  inj.seed_stream(5);
  int nonzero = 0;
  constexpr int kN = 20'000;
  for (int i = 0; i < kN; ++i) {
    const SimTime d = inj.extra_service_time(0, us(10));
    EXPECT_LE(d, ms(2));
    if (d > 0) {
      EXPECT_GE(d, us(100));
      ++nonzero;
    }
  }
  EXPECT_NEAR(static_cast<double>(nonzero) / kN, 0.1, 0.02);
}

TEST(Variability, MarkovSlowdownMultipliesBase) {
  MarkovSlowdownInjector inj{ms(1), ms(1), 3.0, 7};
  // Find a time where the state is slow, verify the multiplier.
  bool saw_slow = false;
  bool saw_fast = false;
  for (SimTime t = 0; t < ms(50); t += us(100)) {
    const SimTime extra = inj.extra_service_time(t, us(10));
    if (inj.slow_at(t)) {
      EXPECT_EQ(extra, us(20));  // base * (3-1)
      saw_slow = true;
    } else {
      EXPECT_EQ(extra, 0);
      saw_fast = true;
    }
  }
  EXPECT_TRUE(saw_slow);
  EXPECT_TRUE(saw_fast);
}

// --- server + client end to end (direct link, no LB) ---

struct KvRig {
  explicit KvRig(KvServerConfig sc = {}, KvClientConfig cc = {},
                 SimTime one_way = us(25)) {
    sim = std::make_unique<Simulator>();
    net = std::make_unique<Network>(*sim);
    server_host = std::make_unique<TcpHost>(*sim, *net, kServerAddr, "s",
                                            TcpConfig{}, 2);
    client_host = std::make_unique<TcpHost>(*sim, *net, kClientAddr, "c",
                                            TcpConfig{}, 3);
    net->add_duplex_link(kClientAddr, kServerAddr,
                         {10'000'000'000, one_way, 0});
    server = std::make_unique<KvServer>(*server_host, sc);
    cc.server = {kServerAddr, sc.port};
    client = std::make_unique<KvClient>(*client_host, cc);
  }

  std::unique_ptr<Simulator> sim;
  std::unique_ptr<Network> net;
  std::unique_ptr<TcpHost> server_host;
  std::unique_ptr<TcpHost> client_host;
  std::unique_ptr<KvServer> server;
  std::unique_ptr<KvClient> client;
};

TEST(KvServer, ServesGetAndSet) {
  KvClientConfig cc;
  cc.connections = 1;
  cc.pipeline = 1;
  cc.get_ratio = 0.5;
  cc.requests_per_conn = 0;  // no churn
  KvRig rig{{}, cc};
  std::uint64_t responses = 0;
  rig.client->set_recorder([&](const RequestRecord&) { ++responses; });
  rig.client->start();
  rig.sim->run_until(ms(100));
  rig.client->stop();
  EXPECT_GT(responses, 100u);
  EXPECT_EQ(rig.server->requests_served(),
            rig.client->responses_received());
  EXPECT_GT(rig.server->gets(), 0u);
  EXPECT_GT(rig.server->sets(), 0u);
}

TEST(KvServer, GetAfterSetHits) {
  KvClientConfig cc;
  cc.connections = 1;
  cc.pipeline = 1;
  cc.keyspace = 5;  // tiny keyspace: sets quickly cover it
  cc.requests_per_conn = 0;
  KvRig rig{{}, cc};
  std::uint64_t hits = 0;
  std::uint64_t gets = 0;
  rig.client->set_recorder([&](const RequestRecord& r) {
    if (r.op == KvOp::kGet) {
      ++gets;
      if (r.hit) ++hits;
    }
  });
  rig.client->start();
  rig.sim->run_until(ms(100));
  EXPECT_GT(gets, 0u);
  EXPECT_GT(hits, gets / 2);  // most gets hit once keys are populated
  EXPECT_LE(rig.server->store_size(), 5u);
}

TEST(KvServer, LatencyIncludesNetworkAndService) {
  KvServerConfig sc;
  sc.get_base = us(15);
  sc.set_base = us(15);
  sc.service_sigma = 0.0;
  KvClientConfig cc;
  cc.connections = 1;
  cc.pipeline = 1;
  cc.requests_per_conn = 0;
  KvRig rig{sc, cc, us(25)};  // RTT 50us + 15us service ≈ 65us
  std::vector<SimTime> latencies;
  rig.client->set_recorder(
      [&](const RequestRecord& r) { latencies.push_back(r.latency); });
  rig.client->start();
  rig.sim->run_until(ms(50));
  ASSERT_GT(latencies.size(), 10u);
  for (std::size_t i = 2; i < latencies.size(); ++i) {  // skip warm-up
    EXPECT_GE(latencies[i], us(64));
    EXPECT_LT(latencies[i], us(90));
  }
}

TEST(KvServer, WorkerPoolQueuesUnderOverload) {
  KvServerConfig sc;
  sc.workers = 1;
  sc.get_base = us(200);  // slow single worker
  sc.set_base = us(200);
  sc.service_sigma = 0.0;
  KvClientConfig cc;
  cc.connections = 4;
  cc.pipeline = 8;  // heavy concurrency against one worker
  cc.requests_per_conn = 0;
  KvRig rig{sc, cc};
  std::vector<SimTime> latencies;
  rig.client->set_recorder(
      [&](const RequestRecord& r) { latencies.push_back(r.latency); });
  rig.client->start();
  rig.sim->run_until(ms(100));
  ASSERT_GT(latencies.size(), 50u);
  EXPECT_GT(rig.server->max_queue_depth(), 4u);
  // Queueing pushes latency far beyond one service time.
  double sum = 0;
  for (auto l : latencies) sum += static_cast<double>(l);
  EXPECT_GT(sum / static_cast<double>(latencies.size()),
            static_cast<double>(us(1000)));
}

TEST(KvServer, StepInjectorInflatesLatency) {
  KvServerConfig sc;
  sc.service_sigma = 0.0;
  KvClientConfig cc;
  cc.connections = 1;
  cc.pipeline = 1;
  cc.requests_per_conn = 0;
  KvRig rig{sc, cc};
  rig.server->add_injector(
      std::make_unique<StepDelayInjector>(ms(20), ms(1)));
  std::vector<Sample> lat;
  rig.client->set_recorder([&](const RequestRecord& r) {
    lat.push_back({r.sent_at, r.latency});
  });
  rig.client->start();
  rig.sim->run_until(ms(40));
  const double before = mean_in_window(lat, 0, ms(18));
  const double after = mean_in_window(lat, ms(22), ms(40));
  EXPECT_GT(after, before + static_cast<double>(us(900)));
}

TEST(KvServer, GcPauseStallsAllWorkers) {
  KvServerConfig sc;
  sc.workers = 4;
  sc.service_sigma = 0.0;
  KvClientConfig cc;
  cc.connections = 2;
  cc.pipeline = 2;
  cc.requests_per_conn = 0;
  KvRig rig{sc, cc};
  rig.server->add_injector(
      std::make_unique<GcPauseInjector>(ms(10), ms(2)));
  std::vector<Sample> lat;
  rig.client->set_recorder([&](const RequestRecord& r) {
    lat.push_back({r.sent_at, r.latency});
  });
  rig.client->start();
  rig.sim->run_until(ms(50));
  // The closed loop means only the few in-flight requests per cycle hit a
  // pause, so assert on the extreme tail: some requests stalled ~2ms.
  const double worst = percentile_in_window(lat, 0, ms(50), 1.0);
  EXPECT_GT(worst, static_cast<double>(ms(1)));
  // And the median is unaffected (pauses are rare).
  const double median = percentile_in_window(lat, 0, ms(50), 0.5);
  EXPECT_LT(median, static_cast<double>(us(200)));
}

TEST(KvClient, PipelineBoundsOutstanding) {
  KvClientConfig cc;
  cc.connections = 1;
  cc.pipeline = 4;
  cc.requests_per_conn = 0;
  KvRig rig{{}, cc};
  rig.client->start();
  for (SimTime t = ms(1); t < ms(20); t += ms(1)) {
    rig.sim->run_until(t);
    EXPECT_LE(rig.client->requests_sent() -
                  rig.client->responses_received(),
              4u);
  }
}

TEST(KvClient, ChurnReconnects) {
  KvClientConfig cc;
  cc.connections = 2;
  cc.pipeline = 2;
  cc.requests_per_conn = 10;
  KvRig rig{{}, cc};
  rig.client->start();
  rig.sim->run_until(ms(200));
  rig.client->stop();
  EXPECT_GT(rig.client->connections_opened(), 10u);
  // Requests per connection respected (within pipeline slack).
  EXPECT_GE(rig.client->responses_received(),
            (rig.client->connections_opened() - 2) * 10);
}

TEST(KvClient, GetRatioRespected) {
  KvClientConfig cc;
  cc.connections = 1;
  cc.pipeline = 4;
  cc.get_ratio = 0.8;
  cc.requests_per_conn = 0;
  KvRig rig{{}, cc};
  std::uint64_t gets = 0;
  std::uint64_t total = 0;
  rig.client->set_recorder([&](const RequestRecord& r) {
    ++total;
    if (r.op == KvOp::kGet) ++gets;
  });
  rig.client->start();
  rig.sim->run_until(ms(200));
  ASSERT_GT(total, 500u);
  EXPECT_NEAR(static_cast<double>(gets) / static_cast<double>(total), 0.8,
              0.05);
}

TEST(KvClient, ThinkTimePacesRequests) {
  KvClientConfig cc;
  cc.connections = 1;
  cc.pipeline = 1;
  cc.think_time = ms(1);
  cc.requests_per_conn = 0;
  KvRig rig{{}, cc};
  rig.client->start();
  rig.sim->run_until(ms(100));
  // ~1 request per (think + rtt + service) ≈ 1.1ms -> well under 100.
  EXPECT_LT(rig.client->responses_received(), 100u);
  EXPECT_GT(rig.client->responses_received(), 50u);
}

TEST(KvClient, StopClosesConnections) {
  KvClientConfig cc;
  cc.connections = 3;
  cc.requests_per_conn = 0;
  KvRig rig{{}, cc};
  rig.client->start();
  rig.sim->run_until(ms(10));
  rig.client->stop();
  rig.sim->run_until(ms(30));
  EXPECT_EQ(rig.client_host->stack().connection_count(), 0u);
  EXPECT_EQ(rig.server->open_connections(), 0u);
}

TEST(KvServer, BusyUtilizationTracked) {
  KvClientConfig cc;
  cc.connections = 1;
  cc.pipeline = 1;
  cc.requests_per_conn = 0;
  KvRig rig{{}, cc};
  rig.client->start();
  rig.sim->run_until(ms(100));
  const double busy = rig.server->busy_worker_seconds(rig.sim->now());
  EXPECT_GT(busy, 0.0);
  EXPECT_LT(busy, 0.1 * 4);  // cannot exceed workers * wall time
}

// --- bulk flows ---

TEST(BulkFlow, SustainedTransferWithRttSamples) {
  Simulator sim;
  Network net{sim};
  TcpHost sender{sim, net, kClientAddr, "snd", {}, 1};
  TcpHost receiver{sim, net, kServerAddr, "rcv", {}, 2};
  net.add_duplex_link(kClientAddr, kServerAddr, {10'000'000'000, us(100), 0});
  BulkSink sink{receiver, 9000};
  TcpConfig cfg;
  cfg.cwnd_bytes = 16 * cfg.mss;
  BulkSender bulk{sender, {kServerAddr, 9000}, cfg};
  std::vector<Sample> rtts;
  bulk.set_rtt_recorder(
      [&](SimTime t, SimTime rtt) { rtts.push_back({t, rtt}); });
  bulk.start();
  sim.run_until(ms(100));
  EXPECT_GT(sink.bytes_received(), 1'000'000u);
  ASSERT_GT(rtts.size(), 100u);
  for (const auto& s : rtts) {
    EXPECT_GE(s.value, us(200));
    EXPECT_LT(s.value, us(400));
  }
}

TEST(BulkFlow, WindowLimitsInFlight) {
  Simulator sim;
  Network net{sim};
  TcpHost sender{sim, net, kClientAddr, "snd", {}, 1};
  TcpHost receiver{sim, net, kServerAddr, "rcv", {}, 2};
  net.add_duplex_link(kClientAddr, kServerAddr, {10'000'000'000, us(100), 0});
  BulkSink sink{receiver, 9000};
  TcpConfig cfg;
  cfg.cwnd_bytes = 4 * cfg.mss;
  BulkSender bulk{sender, {kServerAddr, 9000}, cfg};
  bulk.start();
  for (SimTime t = ms(1); t < ms(20); t += ms(1)) {
    sim.run_until(t);
    ASSERT_NE(bulk.connection(), nullptr);
    EXPECT_LE(bulk.connection()->bytes_in_flight(), cfg.cwnd_bytes);
  }
}


// --- parameterized sweeps ---

// Pipeline invariant across (connections, pipeline) combinations.
class KvClientShape
    : public testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(KvClientShape, OutstandingNeverExceedsBudget) {
  const auto [conns, pipeline] = GetParam();
  KvClientConfig cc;
  cc.connections = conns;
  cc.pipeline = pipeline;
  cc.requests_per_conn = 0;
  KvRig rig{{}, cc};
  rig.client->start();
  const auto budget = static_cast<std::uint64_t>(conns) *
                      static_cast<std::uint64_t>(pipeline);
  for (SimTime t = ms(1); t < ms(30); t += ms(1)) {
    rig.sim->run_until(t);
    EXPECT_LE(rig.client->requests_sent() - rig.client->responses_received(),
              budget);
  }
  rig.client->stop();
  rig.sim->run_until(ms(40));
  // Stop abandons at most the in-flight requests (server-side work whose
  // response could no longer be sent once the close was underway).
  EXPECT_LE(rig.client->requests_sent() - rig.client->responses_received(),
            budget);
}

INSTANTIATE_TEST_SUITE_P(Shapes, KvClientShape,
                         testing::Combine(testing::Values(1, 2, 8),
                                          testing::Values(1, 4, 16)));

// Server latency falls as workers grow (same offered load).
class KvWorkerSweep : public testing::TestWithParam<int> {};

TEST_P(KvWorkerSweep, MoreWorkersNeverSlower) {
  auto run_with_workers = [](int workers) {
    KvServerConfig sc;
    sc.workers = workers;
    sc.get_base = us(100);
    sc.set_base = us(100);
    sc.service_sigma = 0.0;
    KvClientConfig cc;
    cc.connections = 4;
    cc.pipeline = 4;
    cc.requests_per_conn = 0;
    KvRig rig{sc, cc};
    std::vector<double> lat;
    rig.client->set_recorder([&](const RequestRecord& r) {
      lat.push_back(static_cast<double>(r.latency));
    });
    rig.client->start();
    rig.sim->run_until(ms(100));
    return exact_percentile(std::move(lat), 0.5);
  };
  const double with_n = run_with_workers(GetParam());
  const double with_2n = run_with_workers(GetParam() * 2);
  EXPECT_LE(with_2n, with_n * 1.1);
}

INSTANTIATE_TEST_SUITE_P(Workers, KvWorkerSweep, testing::Values(1, 2, 4));

// Zipf key skew shows up in the store: with strong skew, far fewer distinct
// keys are ever written than with uniform keys.
TEST(KvClientKeys, ZipfSkewConcentratesStore) {
  auto run_with_zipf = [](double s) {
    KvServerConfig sc;
    KvClientConfig cc;
    cc.connections = 2;
    cc.pipeline = 8;
    cc.get_ratio = 0.0;  // all SETs
    cc.keyspace = 100'000;
    cc.zipf_s = s;
    cc.requests_per_conn = 0;
    KvRig rig{sc, cc};
    rig.client->start();
    rig.sim->run_until(ms(100));
    return rig.server->store_size();
  };
  const auto uniform_keys = run_with_zipf(0.0);
  const auto skewed_keys = run_with_zipf(1.2);
  EXPECT_LT(skewed_keys * 3, uniform_keys);
}

// The variability injectors compose: step + GC together inflate both the
// body and the tail.
TEST(KvServer, InjectorsCompose) {
  KvServerConfig sc;
  sc.service_sigma = 0.0;
  KvClientConfig cc;
  cc.connections = 1;
  cc.pipeline = 1;
  cc.requests_per_conn = 0;
  KvRig rig{sc, cc};
  rig.server->add_injector(std::make_unique<StepDelayInjector>(ms(10), us(300)));
  rig.server->add_injector(std::make_unique<GcPauseInjector>(ms(20), ms(2)));
  std::vector<Sample> lat;
  rig.client->set_recorder([&](const RequestRecord& r) {
    lat.push_back({r.sent_at, r.latency});
  });
  rig.client->start();
  rig.sim->run_until(ms(60));
  const double median_late =
      percentile_in_window(lat, ms(12), ms(60), 0.5);
  EXPECT_GT(median_late, static_cast<double>(us(350)));  // step visible
  const double worst = percentile_in_window(lat, 0, ms(60), 1.0);
  EXPECT_GT(worst, static_cast<double>(ms(1)));  // GC pause visible
}

// Failure injection: the server crashes (RSTs every connection, queue
// dropped); clients must reconnect and throughput must resume.
TEST(KvClient, SurvivesServerCrash) {
  KvClientConfig cc;
  cc.connections = 2;
  cc.pipeline = 2;
  cc.requests_per_conn = 0;
  KvRig rig{{}, cc};
  rig.client->start();
  rig.sim->schedule_at(ms(10), [&] { rig.server->abort_all_connections(); });
  rig.sim->run_until(ms(10) + us(1));
  const auto at_crash = rig.client->responses_received();
  rig.sim->run_until(ms(60));
  EXPECT_GT(rig.client->connection_failures(), 0u);   // resets were seen
  EXPECT_GT(rig.client->connections_opened(), 2u);    // reconnected
  EXPECT_GT(rig.client->responses_received(), at_crash + 100);  // recovered
}

}  // namespace
}  // namespace inband
