// Unit tests: TCP model (handshake, delivery, flow control, ACK policy,
// retransmission, teardown, pacing, sequence arithmetic, buffers).
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "net/trace.h"
#include "tcp/seq.h"
#include "tcp/stack.h"
#include "util/rng.h"

namespace inband {
namespace {

constexpr Ipv4 kA = make_ipv4(10, 0, 0, 1);
constexpr Ipv4 kB = make_ipv4(10, 0, 0, 2);
constexpr std::uint16_t kPort = 7000;

struct TestPayload final : AppPayload {
  explicit TestPayload(int t) : tag{t} {}
  int tag;
};

// Test-only adapter: a PacketObserver that forwards to a lambda.
struct CallbackObserver final : PacketObserver {
  explicit CallbackObserver(std::function<void(const Packet&, Ipv4, Ipv4)> f)
      : fn{std::move(f)} {}
  void on_packet(const Packet& pkt, Ipv4 from, Ipv4 to) override {
    fn(pkt, from, to);
  }
  std::function<void(const Packet&, Ipv4, Ipv4)> fn;
};

// Two hosts on a duplex link; B listens.
struct TcpRig {
  explicit TcpRig(TcpConfig config = {}, LinkParams link = {1'000'000'000,
                                                            us(50), 0})
      : net{sim},
        a{sim, net, kA, "a", config, 1},
        b{sim, net, kB, "b", config, 2} {
    net.add_duplex_link(kA, kB, link);
  }

  Simulator sim;
  Network net;
  TcpHost a;
  TcpHost b;
};

// --- sequence arithmetic ---

TEST(Seq, ComparisonAcrossWrap) {
  EXPECT_TRUE(seq_lt(0xfffffff0u, 0x10u));
  EXPECT_TRUE(seq_gt(0x10u, 0xfffffff0u));
  EXPECT_TRUE(seq_le(5u, 5u));
  EXPECT_TRUE(seq_ge(5u, 5u));
  EXPECT_FALSE(seq_lt(5u, 5u));
}

TEST(Seq, WrapUnwrapRoundTrip) {
  const std::uint32_t isn = 0xfffffff0u;
  for (std::uint64_t offset : {0ULL, 1ULL, 100ULL, 0x100000000ULL,
                               0x100000010ULL}) {
    const std::uint32_t wire = wrap_seq(isn, offset);
    EXPECT_EQ(unwrap_seq(isn, wire, offset), static_cast<std::int64_t>(offset))
        << offset;
  }
}

TEST(Seq, UnwrapPicksNearestToReference) {
  const std::uint32_t isn = 0;
  // Wire value 10 near reference 0x100000000 means offset 0x10000000a.
  EXPECT_EQ(unwrap_seq(isn, 10, 0x100000000ULL), 0x10000000aLL);
  // Same wire value near reference 0 means plain 10.
  EXPECT_EQ(unwrap_seq(isn, 10, 0), 10);
}

TEST(Seq, UnwrapDetectsOldDuplicate) {
  // Reference advanced past the wire value: offset comes out below ref.
  const std::int64_t off = unwrap_seq(0, 100, 1'000'000);
  EXPECT_LT(off, 1'000'000);
}

// --- send/recv buffers ---

TEST(SendBuffer, TracksOffsetsAndMessages) {
  SendBuffer sb;
  EXPECT_EQ(sb.end(), 1u);  // first app byte after SYN
  sb.append_message(std::make_shared<TestPayload>(1), 100);
  sb.append_message(std::make_shared<TestPayload>(2), 50);
  EXPECT_EQ(sb.end(), 151u);
  const auto msgs = sb.messages_in(1, 101);
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].end_offset, 101u);
  EXPECT_EQ(sb.messages_in(1, 151).size(), 2u);
  EXPECT_EQ(sb.messages_in(101, 150).size(), 0u);  // second ends at 151
}

// Issue 10 flagged the (range_start, range_end] comparator for mishandling a
// message whose end_offset equals range_start — retransmission segments that
// split exactly at a message boundary could then pick up or drop the
// boundary message. The intended semantics: a message belongs to the one
// segment whose byte range contains its final byte (the interval is open on
// the left, closed on the right). The comparator implements exactly that;
// these tests pin every boundary case so it cannot regress silently.
TEST(SendBuffer, MessagesInExactBoundarySemantics) {
  SendBuffer sb;
  sb.append_message(std::make_shared<TestPayload>(1), 100);  // ends at 101
  sb.append_message(std::make_shared<TestPayload>(2), 50);   // ends at 151
  // A message ending exactly at range_end belongs to that segment...
  const auto first = sb.messages_in(1, 101);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].end_offset, 101u);
  // ...and is excluded from the next segment, whose range starts there.
  const auto second = sb.messages_in(101, 151);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].end_offset, 151u);
  // Zero-length range at a boundary matches nothing.
  EXPECT_EQ(sb.messages_in(101, 101).size(), 0u);
  // Range ending one byte short of the boundary message excludes it; range
  // starting one byte earlier picks it up.
  EXPECT_EQ(sb.messages_in(1, 100).size(), 0u);
  EXPECT_EQ(sb.messages_in(100, 101).size(), 1u);
  // Whole-stream query sees both, in order.
  const auto all = sb.messages_in(0, 151);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].end_offset, 101u);
  EXPECT_EQ(all[1].end_offset, 151u);
}

// Differential check: for any segmentation of the stream — cut points biased
// onto exact message boundaries, as retransmit splits produce — walking the
// segments in order yields every message exactly once, each inside the one
// segment containing its final byte.
TEST(SendBuffer, MessagesInPartitionUnderArbitrarySegmentation) {
  Rng rng{0x5e9b0ffe7ULL};
  for (int trial = 0; trial < 200; ++trial) {
    SendBuffer sb;
    std::vector<std::uint64_t> ends;
    const int messages = static_cast<int>(rng.uniform_u64(1, 12));
    for (int m = 0; m < messages; ++m) {
      const auto wire = static_cast<std::uint32_t>(rng.uniform_u64(1, 7));
      sb.append_message(std::make_shared<TestPayload>(m), wire);
      ends.push_back(sb.end());
    }
    // Random cut points over [1, end], half of them snapped onto a message
    // boundary (the adversarial case).
    std::vector<std::uint64_t> cuts{1, sb.end()};
    const int extra = static_cast<int>(rng.uniform_u64(0, 6));
    for (int c = 0; c < extra; ++c) {
      if (rng.bernoulli(0.5)) {
        cuts.push_back(ends[rng.uniform_u64(0, ends.size() - 1)]);
      } else {
        cuts.push_back(rng.uniform_u64(1, sb.end()));
      }
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
    std::vector<std::uint64_t> seen;
    for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
      const auto msgs = sb.messages_in(cuts[i], cuts[i + 1]);
      for (std::uint32_t j = 0; j < msgs.size(); ++j) {
        EXPECT_GT(msgs[j].end_offset, cuts[i]);
        EXPECT_LE(msgs[j].end_offset, cuts[i + 1]);
        seen.push_back(msgs[j].end_offset);
      }
    }
    EXPECT_EQ(seen, ends) << "segmentation dropped or duplicated a message "
                             "(trial " << trial << ")";
  }
}

TEST(SendBuffer, ReleaseAckedDropsCoveredMessages) {
  SendBuffer sb;
  sb.append_message(std::make_shared<TestPayload>(1), 10);
  sb.append_message(std::make_shared<TestPayload>(2), 10);
  sb.release_acked(11);
  EXPECT_EQ(sb.pending_messages(), 1u);
  sb.release_acked(21);
  EXPECT_EQ(sb.pending_messages(), 0u);
}

TEST(RecvBuffer, InOrderDelivery) {
  RecvBuffer rb;
  MsgList msgs{{51, std::make_shared<TestPayload>(7)}};
  const auto d = rb.on_segment(1, 51, msgs);
  EXPECT_EQ(d.bytes, 50u);
  ASSERT_EQ(d.messages.size(), 1u);
  EXPECT_FALSE(d.out_of_order);
  EXPECT_EQ(rb.rcv_nxt(), 51u);
}

TEST(RecvBuffer, OutOfOrderHeldThenDrained) {
  RecvBuffer rb;
  auto d1 = rb.on_segment(51, 101, {});
  EXPECT_TRUE(d1.out_of_order);
  EXPECT_EQ(d1.bytes, 0u);
  EXPECT_EQ(rb.buffered_bytes(), 50u);
  auto d2 = rb.on_segment(1, 51, {});
  EXPECT_EQ(d2.bytes, 100u);
  EXPECT_EQ(rb.rcv_nxt(), 101u);
  EXPECT_EQ(rb.buffered_bytes(), 0u);
}

TEST(RecvBuffer, DuplicateDetected) {
  RecvBuffer rb;
  rb.on_segment(1, 51, {});
  const auto d = rb.on_segment(1, 51, {});
  EXPECT_TRUE(d.duplicate);
  EXPECT_EQ(d.bytes, 0u);
}

TEST(RecvBuffer, OverlappingRetransmissionDeliversOnce) {
  RecvBuffer rb;
  auto payload = std::make_shared<TestPayload>(9);
  MsgList msgs{{41, payload}};
  rb.on_segment(21, 41, msgs);                    // ooo
  const auto d = rb.on_segment(1, 41, msgs);      // covers both
  EXPECT_EQ(d.bytes, 40u);
  ASSERT_EQ(d.messages.size(), 1u);               // deduped
}

TEST(RecvBuffer, MessageDeliveredOnlyWhenComplete) {
  RecvBuffer rb;
  auto payload = std::make_shared<TestPayload>(3);
  // Message ends at 101; first segment covers only [1, 51).
  auto d1 = rb.on_segment(1, 51, {{101, payload}});
  EXPECT_EQ(d1.messages.size(), 0u);
  auto d2 = rb.on_segment(51, 101, {{101, payload}});
  ASSERT_EQ(d2.messages.size(), 1u);
}

// --- handshake ---

TEST(TcpHandshake, EstablishesBothSides) {
  TcpRig rig;
  TcpConnection* server_conn = nullptr;
  bool client_established = false;
  rig.b.stack().listen(kPort, [&](TcpConnection& c) { server_conn = &c; });
  auto* client = rig.a.stack().connect({kB, kPort});
  client->callbacks().on_established =
      [&](TcpConnection&) { client_established = true; };
  client->open();
  rig.sim.run_until(ms(10));
  EXPECT_TRUE(client_established);
  ASSERT_NE(server_conn, nullptr);
  EXPECT_EQ(client->state(), TcpState::kEstablished);
  EXPECT_EQ(server_conn->state(), TcpState::kEstablished);
}

TEST(TcpHandshake, TakesOneRtt) {
  TcpRig rig;  // 50us one-way => RTT 100us (plus tiny serialization)
  SimTime established_at = kNoTime;
  rig.b.stack().listen(kPort, [](TcpConnection&) {});
  auto* client = rig.a.stack().connect({kB, kPort});
  client->callbacks().on_established = [&](TcpConnection& c) {
    established_at = c.srtt() >= 0 ? rig.sim.now() : rig.sim.now();
  };
  client->open();
  rig.sim.run_until(ms(10));
  ASSERT_NE(established_at, kNoTime);
  EXPECT_GE(established_at, us(100));
  EXPECT_LT(established_at, us(110));
}

TEST(TcpHandshake, SynRetransmitsOnLoss) {
  // Tiny queue so the first SYN can be forced to drop: we instead drop by
  // sending into a link with 1-byte queue while it is busy. Simpler: use a
  // link so slow the first SYN serializes for a long time is not a loss.
  // Force loss deterministically by removing the listener until t=60ms:
  // the stack RSTs unknown flows, so instead test RTO by a genuinely lossy
  // queue: saturate it with junk at t=0.
  TcpRig rig{{}, {1'000'000, us(10), 600}};  // 1 Mb/s, 600-byte queue
  rig.b.stack().listen(kPort, [](TcpConnection&) {});
  // Saturate the a->b link queue so the first SYN drops.
  Packet junk;
  junk.flow = {{kA, 9}, {kB, 9}, IpProto::kUdp};
  junk.payload_len = 1400;
  rig.net.send(kA, kB, junk);
  rig.net.send(kA, kB, junk);

  bool established = false;
  auto* client = rig.a.stack().connect({kB, kPort});
  client->callbacks().on_established =
      [&](TcpConnection&) { established = true; };
  client->open();
  rig.sim.run_until(sec(2));
  EXPECT_TRUE(established);
  EXPECT_GT(client->retransmits(), 0u);
}

TEST(TcpHandshake, ConnectToClosedPortGetsReset) {
  TcpRig rig;
  bool closed = false;
  bool was_reset = false;
  auto* client = rig.a.stack().connect({kB, kPort});  // nobody listening
  client->callbacks().on_closed = [&](TcpConnection&, bool reset) {
    closed = true;
    was_reset = reset;
  };
  client->open();
  rig.sim.run_until(ms(10));
  EXPECT_TRUE(closed);
  EXPECT_TRUE(was_reset);
  EXPECT_EQ(rig.b.stack().resets_sent(), 1u);
}

// --- data transfer ---

struct EchoServer {
  explicit EchoServer(TcpHost& host, std::uint16_t port) {
    host.stack().listen(port, [this](TcpConnection& c) {
      c.callbacks().on_message = [this](TcpConnection& conn,
                                        std::shared_ptr<const AppPayload> p) {
        ++received;
        conn.send_message(p, 100);  // echo back, fixed size
      };
      c.callbacks().on_peer_close = [](TcpConnection& conn) { conn.close(); };
    });
  }
  int received = 0;
};

TEST(TcpData, MessageRoundTripPreservesIdentity) {
  TcpRig rig;
  EchoServer server{rig.b, kPort};
  auto* client = rig.a.stack().connect({kB, kPort});
  std::shared_ptr<const AppPayload> got;
  auto sent = std::make_shared<TestPayload>(42);
  client->callbacks().on_established = [&](TcpConnection& c) {
    c.send_message(sent, 200);
  };
  client->callbacks().on_message =
      [&](TcpConnection&, std::shared_ptr<const AppPayload> p) { got = p; };
  client->open();
  rig.sim.run_until(ms(10));
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(std::dynamic_pointer_cast<const TestPayload>(got)->tag, 42);
  EXPECT_EQ(server.received, 1);
}

TEST(TcpData, LargeMessageSegmentsAndReassembles) {
  TcpRig rig;
  int delivered = 0;
  std::uint64_t bytes = 0;
  rig.b.stack().listen(kPort, [&](TcpConnection& c) {
    c.callbacks().on_message = [&](TcpConnection&,
                                   std::shared_ptr<const AppPayload>) {
      ++delivered;
    };
    c.callbacks().on_data = [&](TcpConnection&, std::uint64_t n) {
      bytes += n;
    };
  });
  auto* client = rig.a.stack().connect({kB, kPort});
  client->callbacks().on_established = [&](TcpConnection& c) {
    c.send_message(std::make_shared<TestPayload>(1), 10'000);  // ~7 segments
  };
  client->open();
  rig.sim.run_until(ms(50));
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(bytes, 10'000u);
  EXPECT_GT(client->segments_sent(), 7u);
}

TEST(TcpData, PipelinedMessagesDeliverInOrder) {
  TcpRig rig;
  std::vector<int> tags;
  rig.b.stack().listen(kPort, [&](TcpConnection& c) {
    c.callbacks().on_message = [&](TcpConnection&,
                                   std::shared_ptr<const AppPayload> p) {
      tags.push_back(std::dynamic_pointer_cast<const TestPayload>(p)->tag);
    };
  });
  auto* client = rig.a.stack().connect({kB, kPort});
  client->callbacks().on_established = [&](TcpConnection& c) {
    for (int i = 0; i < 20; ++i) {
      c.send_message(std::make_shared<TestPayload>(i), 500);
    }
  };
  client->open();
  rig.sim.run_until(ms(50));
  ASSERT_EQ(tags.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(tags[static_cast<size_t>(i)], i);
}

TEST(TcpData, WindowBoundsBytesInFlight) {
  TcpConfig cfg;
  cfg.cwnd_bytes = 2 * cfg.mss;
  TcpRig rig{cfg};
  rig.b.stack().listen(kPort, [](TcpConnection&) {});
  auto* client = rig.a.stack().connect({kB, kPort}, cfg);
  client->callbacks().on_established = [&](TcpConnection& c) {
    c.send_bytes(1'000'000);
  };
  client->open();
  // Check the invariant at several points during the transfer.
  for (SimTime t = us(200); t < ms(20); t += us(100)) {
    rig.sim.run_until(t);
    EXPECT_LE(client->bytes_in_flight(), cfg.cwnd_bytes);
  }
}

TEST(TcpData, BulkThroughputIsWindowOverRtt) {
  TcpConfig cfg;
  cfg.cwnd_bytes = 16 * cfg.mss;  // ~23 KB
  TcpRig rig{cfg, {10'000'000'000, us(50), 0}};  // RTT ~100us
  std::uint64_t bytes = 0;
  rig.b.stack().listen(kPort, [&](TcpConnection& c) {
    c.callbacks().on_data = [&](TcpConnection&, std::uint64_t n) {
      bytes += n;
    };
  });
  auto* client = rig.a.stack().connect({kB, kPort}, cfg);
  client->callbacks().on_established = [&](TcpConnection& c) {
    c.send_bytes(1ULL << 30);
  };
  client->open();
  rig.sim.run_until(sec(1));
  // Expected ~ W/RTT = 23168 B / ~105us ≈ 210 MB/s; allow wide margin.
  const double mbps = static_cast<double>(bytes) / 1e6;
  EXPECT_GT(mbps, 150.0);
  EXPECT_LT(mbps, 260.0);
}

TEST(TcpData, SenderGetsRttSamples) {
  TcpRig rig;  // one-way 50us
  std::vector<SimTime> rtts;
  rig.b.stack().listen(kPort, [](TcpConnection&) {});
  auto* client = rig.a.stack().connect({kB, kPort});
  client->callbacks().on_rtt_sample = [&](TcpConnection&, SimTime rtt) {
    rtts.push_back(rtt);
  };
  client->callbacks().on_established = [](TcpConnection& c) {
    c.send_bytes(5000);
  };
  client->open();
  rig.sim.run_until(ms(20));
  ASSERT_GT(rtts.size(), 1u);
  for (SimTime r : rtts) {
    EXPECT_GE(r, us(100));
    EXPECT_LT(r, us(200));
  }
}

// --- ACK policy ---

// Counts pure ACKs (no payload) from B to A at the network layer.
struct AckCounter final : PacketObserver {
  explicit AckCounter(Network& net) { net.set_observer(this); }
  void on_packet(const Packet& pkt, Ipv4 from, Ipv4) override {
    if (from == kB && pkt.payload_len == 0 && pkt.has(tcpflag::kAck) &&
        !pkt.has(tcpflag::kSyn) && !pkt.has(tcpflag::kFin)) {
      ++pure_acks;
    }
    if (from == kA && pkt.payload_len > 0) ++data_segments;
  }
  int pure_acks = 0;
  int data_segments = 0;
};

TEST(TcpAck, ImmediateAckPerSegmentWithoutDelack) {
  TcpConfig cfg;
  cfg.delayed_ack = false;
  cfg.cwnd_bytes = 4 * cfg.mss;
  TcpRig rig{cfg};
  AckCounter acks{rig.net};
  rig.b.stack().listen(kPort, [](TcpConnection&) {});
  auto* client = rig.a.stack().connect({kB, kPort}, cfg);
  client->callbacks().on_established = [](TcpConnection& c) {
    c.send_bytes(8 * 1448);
  };
  client->open();
  rig.sim.run_until(ms(50));
  // Every data segment individually acked (handshake ack excluded).
  EXPECT_GE(acks.pure_acks, acks.data_segments);
}

TEST(TcpAck, DelayedAckHalvesAckCount) {
  TcpConfig cfg;
  cfg.delayed_ack = true;
  cfg.ack_every = 2;
  cfg.cwnd_bytes = 8 * cfg.mss;
  TcpRig rig{cfg};
  AckCounter acks{rig.net};
  rig.b.stack().listen(kPort, [](TcpConnection&) {});
  auto* client = rig.a.stack().connect({kB, kPort}, cfg);
  client->callbacks().on_established = [](TcpConnection& c) {
    c.send_bytes(64 * 1448);
  };
  client->open();
  rig.sim.run_until(sec(1));
  // Roughly one ack per two segments (64 segments -> ~32 acks + stragglers).
  EXPECT_LT(acks.pure_acks, 64 * 3 / 4);
  EXPECT_GT(acks.pure_acks, 64 / 4);
}

TEST(TcpAck, DelackTimerFlushesOddSegment) {
  TcpConfig cfg;
  cfg.delayed_ack = true;
  // Must stay below rto_min (5ms), as on real stacks, or the sender's
  // retransmission races the delayed ACK.
  cfg.delack_timeout = ms(2);
  TcpRig rig{cfg};
  AckCounter acks{rig.net};
  rig.b.stack().listen(kPort, [](TcpConnection&) {});
  auto* client = rig.a.stack().connect({kB, kPort}, cfg);
  client->callbacks().on_established = [](TcpConnection& c) {
    c.send_bytes(100);  // single small segment
  };
  client->open();
  rig.sim.run_until(ms(1));
  const int before = acks.pure_acks;
  EXPECT_GT(client->bytes_in_flight(), 0u);  // still unacked
  rig.sim.run_until(ms(5));  // delack timer fires ~2ms after delivery
  EXPECT_EQ(before + 1, acks.pure_acks);
  EXPECT_EQ(client->bytes_in_flight(), 0u);
  EXPECT_EQ(client->retransmits(), 0u);  // the ACK beat the RTO
}

// --- loss recovery ---

TEST(TcpLoss, RecoversThroughLossyQueue) {
  TcpConfig cfg;
  cfg.cwnd_bytes = 32 * cfg.mss;  // overdrive a small queue
  cfg.rto_initial = ms(20);
  // 100 Mb/s with a 5 KB queue: a 32-segment burst overflows it.
  TcpRig rig{cfg, {100'000'000, us(50), 5000}};
  std::uint64_t bytes = 0;
  rig.b.stack().listen(kPort, [&](TcpConnection& c) {
    c.callbacks().on_data = [&](TcpConnection&, std::uint64_t n) {
      bytes += n;
    };
  });
  auto* client = rig.a.stack().connect({kB, kPort}, cfg);
  constexpr std::uint64_t kTotal = 200 * 1448;
  client->callbacks().on_established = [&](TcpConnection& c) {
    c.send_bytes(kTotal);
  };
  client->open();
  rig.sim.run_until(sec(10));
  EXPECT_EQ(bytes, kTotal);  // everything arrives despite drops
  EXPECT_GT(client->retransmits(), 0u);
  EXPECT_GT(rig.net.stats().packets_dropped, 0u);
}

TEST(TcpLoss, MessagesSurviveRetransmission) {
  TcpConfig cfg;
  cfg.cwnd_bytes = 32 * cfg.mss;
  cfg.rto_initial = ms(20);
  TcpRig rig{cfg, {100'000'000, us(50), 5000}};
  std::vector<int> tags;
  rig.b.stack().listen(kPort, [&](TcpConnection& c) {
    c.callbacks().on_message = [&](TcpConnection&,
                                   std::shared_ptr<const AppPayload> p) {
      tags.push_back(std::dynamic_pointer_cast<const TestPayload>(p)->tag);
    };
  });
  auto* client = rig.a.stack().connect({kB, kPort}, cfg);
  client->callbacks().on_established = [&](TcpConnection& c) {
    for (int i = 0; i < 100; ++i) {
      c.send_message(std::make_shared<TestPayload>(i), 1448);
    }
  };
  client->open();
  rig.sim.run_until(sec(10));
  ASSERT_EQ(tags.size(), 100u);  // exactly once each
  for (int i = 0; i < 100; ++i) EXPECT_EQ(tags[static_cast<size_t>(i)], i);
}

// --- teardown ---

TEST(TcpClose, GracefulFinBothWays) {
  TcpRig rig;
  bool client_closed = false;
  bool client_reset = false;
  rig.b.stack().listen(kPort, [](TcpConnection& c) {
    c.callbacks().on_peer_close = [](TcpConnection& conn) { conn.close(); };
  });
  auto* client = rig.a.stack().connect({kB, kPort});
  client->callbacks().on_established = [](TcpConnection& c) { c.close(); };
  client->callbacks().on_closed = [&](TcpConnection&, bool reset) {
    client_closed = true;
    client_reset = reset;
  };
  client->open();
  rig.sim.run_until(sec(1));
  EXPECT_TRUE(client_closed);
  EXPECT_FALSE(client_reset);
  // Both stacks reaped their connections (after TIME_WAIT).
  EXPECT_EQ(rig.a.stack().connection_count(), 0u);
  EXPECT_EQ(rig.b.stack().connection_count(), 0u);
}

TEST(TcpClose, CloseFlushesQueuedDataFirst) {
  TcpRig rig;
  std::uint64_t bytes = 0;
  rig.b.stack().listen(kPort, [&](TcpConnection& c) {
    c.callbacks().on_data = [&](TcpConnection&, std::uint64_t n) {
      bytes += n;
    };
    c.callbacks().on_peer_close = [](TcpConnection& conn) { conn.close(); };
  });
  auto* client = rig.a.stack().connect({kB, kPort});
  client->callbacks().on_established = [](TcpConnection& c) {
    c.send_bytes(50'000);
    c.close();  // FIN must trail the data
  };
  client->open();
  rig.sim.run_until(sec(1));
  EXPECT_EQ(bytes, 50'000u);
}

TEST(TcpClose, AbortSendsRstAndPeerSeesReset) {
  TcpRig rig;
  bool server_reset = false;
  rig.b.stack().listen(kPort, [&](TcpConnection& c) {
    c.callbacks().on_closed = [&](TcpConnection&, bool reset) {
      server_reset = reset;
    };
  });
  auto* client = rig.a.stack().connect({kB, kPort});
  client->callbacks().on_established = [](TcpConnection& c) { c.abort(); };
  client->open();
  rig.sim.run_until(ms(10));
  EXPECT_TRUE(server_reset);
}

TEST(TcpClose, ChurnReusesStack) {
  TcpRig rig;
  EchoServer server{rig.b, kPort};
  int completed = 0;
  std::vector<std::uint16_t> ports;
  std::function<void()> open_one = [&] {
    auto* c = rig.a.stack().connect({kB, kPort});
    ports.push_back(c->local().port);
    c->callbacks().on_established = [](TcpConnection& conn) {
      conn.send_message(std::make_shared<TestPayload>(0), 100);
    };
    c->callbacks().on_message = [](TcpConnection& conn,
                                   std::shared_ptr<const AppPayload>) {
      conn.close();
    };
    c->callbacks().on_closed = [&](TcpConnection&, bool) {
      ++completed;
      if (completed < 20) open_one();
    };
    c->open();
  };
  open_one();
  rig.sim.run_until(sec(5));
  EXPECT_EQ(completed, 20);
  EXPECT_EQ(server.received, 20);
  // All ephemeral ports distinct while TIME_WAIT entries lingered.
  std::sort(ports.begin(), ports.end());
  EXPECT_EQ(std::adjacent_find(ports.begin(), ports.end()), ports.end());
}

// --- pacing ---

TEST(TcpPacing, SpacesSegmentsAtRate) {
  TcpConfig cfg;
  cfg.pacing = true;
  cfg.pacing_rate_bps = 100'000'000;  // 1448B -> ~116us spacing
  cfg.cwnd_bytes = 16 * cfg.mss;
  TcpRig rig{cfg, {10'000'000'000, us(50), 0}};
  std::vector<SimTime> data_times;
  CallbackObserver obs{[&](const Packet& pkt, Ipv4 from, Ipv4) {
    if (from == kA && pkt.payload_len > 0) data_times.push_back(pkt.sent_at);
  }};
  rig.net.set_observer(&obs);
  rig.b.stack().listen(kPort, [](TcpConnection&) {});
  auto* client = rig.a.stack().connect({kB, kPort}, cfg);
  client->callbacks().on_established = [](TcpConnection& c) {
    c.send_bytes(20 * 1448);
  };
  client->open();
  rig.sim.run_until(sec(1));
  ASSERT_GT(data_times.size(), 4u);
  for (std::size_t i = 1; i < data_times.size(); ++i) {
    EXPECT_GE(data_times[i] - data_times[i - 1], us(110));
  }
}

TEST(TcpPacing, UnpacedSenderBursts) {
  TcpConfig cfg;
  cfg.cwnd_bytes = 16 * cfg.mss;
  TcpRig rig{cfg, {10'000'000'000, us(50), 0}};
  std::vector<SimTime> data_times;
  CallbackObserver obs{[&](const Packet& pkt, Ipv4 from, Ipv4) {
    if (from == kA && pkt.payload_len > 0) data_times.push_back(pkt.sent_at);
  }};
  rig.net.set_observer(&obs);
  rig.b.stack().listen(kPort, [](TcpConnection&) {});
  auto* client = rig.a.stack().connect({kB, kPort}, cfg);
  client->callbacks().on_established = [](TcpConnection& c) {
    c.send_bytes(16 * 1448);
  };
  client->open();
  rig.sim.run_until(ms(10));
  ASSERT_EQ(data_times.size(), 16u);
  // The initial window leaves as one burst: identical enqueue timestamps.
  EXPECT_EQ(data_times.front(), data_times.back());
}

// --- stack behaviours ---

TEST(TcpStack, ListenerSeesVipAddressedFlows) {
  // Server accepts a flow whose destination address is NOT the server's own
  // address — the DSR/VIP case. We emulate the LB by sending with send_to.
  Simulator sim;
  Network net{sim};
  constexpr Ipv4 kVip = make_ipv4(10, 9, 9, 9);
  TcpHost client{sim, net, kA, "client", {}, 1};
  TcpHost server{sim, net, kB, "server", {}, 2};

  // Forwarding middlebox at the VIP.
  struct Fwd final : Host {
    using Host::Host;
    Ipv4 target = 0;
    void handle_packet(Packet pkt) override { send_to(target, std::move(pkt)); }
  };
  Fwd fwd{sim, net, kVip, "fwd"};
  fwd.target = kB;
  net.add_link(kA, kVip, {1'000'000'000, us(10), 0});
  net.add_link(kVip, kB, {1'000'000'000, us(10), 0});
  net.add_link(kB, kA, {1'000'000'000, us(10), 0});

  bool established = false;
  server.stack().listen(kPort, [](TcpConnection&) {});
  auto* conn = client.stack().connect({kVip, kPort});
  conn->callbacks().on_established =
      [&](TcpConnection&) { established = true; };
  conn->open();
  sim.run_until(ms(10));
  EXPECT_TRUE(established);
  // The server-side connection's local endpoint is the VIP.
  EXPECT_EQ(server.stack().connection_count(), 1u);
}

TEST(TcpStack, CountsInitiatedAndAccepted) {
  TcpRig rig;
  EchoServer server{rig.b, kPort};
  for (int i = 0; i < 3; ++i) {
    auto* c = rig.a.stack().connect({kB, kPort});
    c->callbacks().on_established = [](TcpConnection& conn) { conn.close(); };
    c->open();
  }
  rig.sim.run_until(sec(1));
  EXPECT_EQ(rig.a.stack().initiated(), 3u);
  EXPECT_EQ(rig.b.stack().accepted(), 3u);
}

TEST(TcpStack, StrayPacketGetsRst) {
  TcpRig rig;
  Packet stray;
  stray.flow = {{kA, 1234}, {kB, kPort}, IpProto::kTcp};
  stray.flags = tcpflag::kAck;
  stray.ack = 77;
  rig.net.send(kA, kB, stray);
  rig.sim.run_until(ms(1));
  EXPECT_EQ(rig.b.stack().resets_sent(), 1u);
}


// --- parameterized sweeps ---

// Reliability property across queue sizes (loss rates): every message is
// delivered exactly once, in order, no matter how lossy the path.
class TcpLossSweep : public testing::TestWithParam<std::uint64_t> {};

TEST_P(TcpLossSweep, ExactlyOnceInOrderDelivery) {
  TcpConfig cfg;
  cfg.cwnd_bytes = 32 * cfg.mss;
  cfg.rto_initial = ms(20);
  TcpRig rig{cfg, {100'000'000, us(50), GetParam()}};
  std::vector<int> tags;
  rig.b.stack().listen(kPort, [&](TcpConnection& c) {
    c.callbacks().on_message = [&](TcpConnection&,
                                   std::shared_ptr<const AppPayload> p) {
      tags.push_back(std::dynamic_pointer_cast<const TestPayload>(p)->tag);
    };
  });
  auto* client = rig.a.stack().connect({kB, kPort}, cfg);
  client->callbacks().on_established = [&](TcpConnection& c) {
    for (int i = 0; i < 60; ++i) {
      c.send_message(std::make_shared<TestPayload>(i), 1448);
    }
  };
  client->open();
  rig.sim.run_until(sec(20));
  ASSERT_EQ(tags.size(), 60u) << "queue=" << GetParam();
  for (int i = 0; i < 60; ++i) EXPECT_EQ(tags[static_cast<size_t>(i)], i);
}

INSTANTIATE_TEST_SUITE_P(QueueSizes, TcpLossSweep,
                         testing::Values<std::uint64_t>(0,      // lossless
                                                        20000,  // mild loss
                                                        8000,   // heavy loss
                                                        4000));  // brutal

// Throughput scales with the window until the link saturates.
class TcpWindowSweep : public testing::TestWithParam<std::uint32_t> {};

TEST_P(TcpWindowSweep, ThroughputTracksWindowOverRtt) {
  TcpConfig cfg;
  cfg.cwnd_bytes = GetParam() * cfg.mss;
  TcpRig rig{cfg, {10'000'000'000, us(50), 0}};  // RTT ~100us
  std::uint64_t bytes = 0;
  rig.b.stack().listen(kPort, [&](TcpConnection& c) {
    c.callbacks().on_data = [&](TcpConnection&, std::uint64_t n) {
      bytes += n;
    };
  });
  auto* client = rig.a.stack().connect({kB, kPort}, cfg);
  client->callbacks().on_established = [](TcpConnection& c) {
    c.send_bytes(1ULL << 30);
  };
  client->open();
  rig.sim.run_until(ms(500));
  const double expected_bps =
      static_cast<double>(cfg.cwnd_bytes) / 110e-6;  // W / RTT(+ser)
  const double measured_bps = static_cast<double>(bytes) / 0.5;
  EXPECT_GT(measured_bps, expected_bps * 0.7) << "W=" << GetParam();
  EXPECT_LT(measured_bps, expected_bps * 1.2) << "W=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Windows, TcpWindowSweep,
                         testing::Values<std::uint32_t>(1, 2, 4, 8, 32));

// Reassembly correctness for every permutation of three segments.
class ReassemblyPermutation : public testing::TestWithParam<int> {};

TEST_P(ReassemblyPermutation, AllOrdersDeliverFullStream) {
  // Segments: [1,101), [101,201), [201,301); message ends at 301.
  struct Seg {
    std::uint64_t start, end;
  };
  std::vector<Seg> segs{{1, 101}, {101, 201}, {201, 301}};
  std::vector<int> perm{0, 1, 2};
  for (int i = 0; i < GetParam(); ++i) std::next_permutation(perm.begin(), perm.end());

  RecvBuffer rb;
  auto payload = std::make_shared<TestPayload>(5);
  std::uint64_t delivered = 0;
  std::size_t messages = 0;
  for (int idx : perm) {
    const auto d = rb.on_segment(segs[static_cast<size_t>(idx)].start,
                                 segs[static_cast<size_t>(idx)].end,
                                 {{301, payload}});
    delivered += d.bytes;
    messages += d.messages.size();
  }
  EXPECT_EQ(delivered, 300u);
  EXPECT_EQ(messages, 1u);
  EXPECT_EQ(rb.rcv_nxt(), 301u);
  EXPECT_EQ(rb.buffered_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Permutations, ReassemblyPermutation,
                         testing::Range(0, 6));

// RTT sampling stays correct across propagation delays.
class TcpRttSweep : public testing::TestWithParam<SimTime> {};

TEST_P(TcpRttSweep, TimestampRttMatchesPath) {
  const SimTime one_way = GetParam();
  TcpRig rig{{}, {10'000'000'000, one_way, 0}};
  std::vector<SimTime> rtts;
  rig.b.stack().listen(kPort, [](TcpConnection&) {});
  auto* client = rig.a.stack().connect({kB, kPort});
  client->callbacks().on_rtt_sample = [&](TcpConnection&, SimTime rtt) {
    rtts.push_back(rtt);
  };
  client->callbacks().on_established = [](TcpConnection& c) {
    c.send_bytes(20 * 1448);
  };
  client->open();
  rig.sim.run_until(sec(1));
  ASSERT_GT(rtts.size(), 5u);
  for (SimTime r : rtts) {
    EXPECT_GE(r, 2 * one_way);
    EXPECT_LT(r, 2 * one_way + us(60));
  }
}

INSTANTIATE_TEST_SUITE_P(Delays, TcpRttSweep,
                         testing::Values(us(10), us(50), us(200), ms(1)));


// --- additional teardown edge cases ---

TEST(TcpClose, SimultaneousClose) {
  TcpRig rig;
  TcpConnection* server_conn = nullptr;
  bool client_closed = false;
  bool server_closed = false;
  rig.b.stack().listen(kPort, [&](TcpConnection& c) {
    server_conn = &c;
    c.callbacks().on_closed = [&](TcpConnection&, bool) {
      server_closed = true;
    };
  });
  auto* client = rig.a.stack().connect({kB, kPort});
  client->callbacks().on_closed = [&](TcpConnection&, bool) {
    client_closed = true;
  };
  client->open();
  rig.sim.run_until(ms(5));
  ASSERT_NE(server_conn, nullptr);
  // Both sides close in the same instant: FINs cross in flight.
  client->close();
  server_conn->close();
  rig.sim.run_until(sec(1));
  EXPECT_TRUE(client_closed);
  EXPECT_TRUE(server_closed);
  EXPECT_EQ(rig.a.stack().connection_count(), 0u);
  EXPECT_EQ(rig.b.stack().connection_count(), 0u);
}

TEST(TcpClose, HalfCloseServerKeepsSending) {
  // Client closes its write side; the server may still deliver data.
  TcpRig rig;
  std::uint64_t client_received = 0;
  TcpConnection* server_conn = nullptr;
  rig.b.stack().listen(kPort, [&](TcpConnection& c) { server_conn = &c; });
  auto* client = rig.a.stack().connect({kB, kPort});
  client->callbacks().on_data = [&](TcpConnection&, std::uint64_t n) {
    client_received += n;
  };
  client->open();
  rig.sim.run_until(ms(5));
  client->close();  // client -> FIN
  rig.sim.run_until(ms(10));
  ASSERT_NE(server_conn, nullptr);
  ASSERT_EQ(server_conn->state(), TcpState::kCloseWait);
  server_conn->send_bytes(5000);  // server responds on the half-open conn
  rig.sim.run_until(ms(50));
  EXPECT_EQ(client_received, 5000u);
  server_conn->close();
  rig.sim.run_until(sec(1));
  EXPECT_EQ(rig.a.stack().connection_count(), 0u);
}

TEST(TcpClose, DataAfterCloseAsserts) {
  TcpRig rig;
  rig.b.stack().listen(kPort, [](TcpConnection&) {});
  auto* client = rig.a.stack().connect({kB, kPort});
  client->callbacks().on_established = [](TcpConnection& c) { c.close(); };
  client->open();
  rig.sim.run_until(ms(1));
  EXPECT_FALSE(client->can_send());
  EXPECT_DEATH(client->send_bytes(10), "send after close");
}

TEST(TcpState, NamesAreDistinct) {
  EXPECT_STREQ(tcp_state_name(TcpState::kEstablished), "ESTABLISHED");
  EXPECT_STREQ(tcp_state_name(TcpState::kFinWait1), "FIN_WAIT_1");
  EXPECT_STREQ(tcp_state_name(TcpState::kTimeWait), "TIME_WAIT");
  EXPECT_STREQ(tcp_state_name(TcpState::kClosed), "CLOSED");
}

// Piggybacked ACKs: in request/response traffic the response data segment
// carries the ACK, so the server sends (almost) no pure ACKs at all.
TEST(TcpAck, ResponsesPiggybackAcks) {
  TcpRig rig;
  int server_pure_acks = 0;
  int server_data_segments = 0;
  CallbackObserver obs{[&](const Packet& pkt, Ipv4 from, Ipv4) {
    if (from != kB) return;
    if (pkt.has(tcpflag::kSyn) || pkt.has(tcpflag::kFin)) return;
    if (pkt.payload_len == 0 && pkt.has(tcpflag::kAck)) ++server_pure_acks;
    if (pkt.payload_len > 0) ++server_data_segments;
  }};
  rig.net.set_observer(&obs);
  EchoServer server{rig.b, kPort};
  auto* client = rig.a.stack().connect({kB, kPort});
  int remaining = 50;
  client->callbacks().on_established = [](TcpConnection& c) {
    c.send_message(std::make_shared<TestPayload>(0), 100);
  };
  client->callbacks().on_message = [&](TcpConnection& c,
                                       std::shared_ptr<const AppPayload>) {
    if (--remaining > 0) {
      c.send_message(std::make_shared<TestPayload>(remaining), 100);
    }
  };
  client->open();
  rig.sim.run_until(sec(1));
  EXPECT_EQ(server_data_segments, 50);
  // The echo goes out in the same event as the request delivery, so the ACK
  // rides the response: no pure ACK per request from the server.
  EXPECT_LE(server_pure_acks, 2);
}

}  // namespace
}  // namespace inband
