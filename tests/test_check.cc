// Unit tests: check module (invariant auditor, state digests, determinism).
//
// The negative tests inject real corruption — an out-of-order event pushed
// straight into an EventQueue, a Maglev slot overwritten with a bogus
// backend, estimator state with an impossible chosen index — and assert the
// auditor reports exactly the violated invariant. The determinism tests run
// the full cluster rig twice per seed and require byte-identical digests.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/invariant_auditor.h"
#include "check/state_digest.h"
#include "core/ensemble_timeout.h"
#include "core/flow_state_table.h"
#include "lb/conntrack.h"
#include "lb/maglev.h"
#include "scenario/cluster_rig.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace inband {
namespace {

bool has_violation(const InvariantAuditor& auditor,
                   const std::string& invariant) {
  for (const auto& v : auditor.violations()) {
    if (v.invariant == invariant) return true;
  }
  return false;
}

FlowKey test_flow(std::uint16_t src_port) {
  return FlowKey{Endpoint{make_ipv4(10, 0, 0, 1), src_port},
                 Endpoint{make_ipv4(10, 1, 0, 1), 11211}, IpProto::kTcp};
}

// --- InvariantAuditor core ---

TEST(InvariantAuditor, RunsHooksInRegistrationOrder) {
  InvariantAuditor auditor{AuditFailMode::kCollect};
  std::vector<int> order;
  auditor.register_hook("a", [&](AuditScope&) { order.push_back(1); });
  auditor.register_hook("b", [&](AuditScope&) { order.push_back(2); });
  EXPECT_EQ(auditor.hook_count(), 2u);
  EXPECT_EQ(auditor.run_all(ms(5)), 0u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(auditor.audits_run(), 2u);
}

TEST(InvariantAuditor, CollectModeRecordsViolations) {
  InvariantAuditor auditor{AuditFailMode::kCollect};
  auditor.register_hook("mod", [](AuditScope& s) {
    EXPECT_EQ(s.now(), ms(7));
    EXPECT_TRUE(s.check(true, "holds"));
    EXPECT_FALSE(s.check(false, "broken", "details here"));
  });
  EXPECT_EQ(auditor.run_all(ms(7)), 1u);
  ASSERT_EQ(auditor.violations().size(), 1u);
  const auto& v = auditor.violations()[0];
  EXPECT_EQ(v.module, "mod");
  EXPECT_EQ(v.invariant, "broken");
  EXPECT_EQ(v.detail, "details here");
  EXPECT_EQ(v.t, ms(7));
  auditor.clear_violations();
  EXPECT_TRUE(auditor.violations().empty());
}

TEST(InvariantAuditor, RunOneTargetsSingleHook) {
  InvariantAuditor auditor{AuditFailMode::kCollect};
  auditor.register_hook("ok", [](AuditScope& s) { s.check(true, "x"); });
  auditor.register_hook("bad", [](AuditScope& s) { s.check(false, "y"); });
  EXPECT_EQ(auditor.run_one("ok", 0), 0u);
  EXPECT_EQ(auditor.run_one("bad", 0), 1u);
}

TEST(InvariantAuditor, UnregisterRemovesHook) {
  InvariantAuditor auditor{AuditFailMode::kCollect};
  auditor.register_hook("mod", [](AuditScope& s) { s.check(false, "z"); });
  EXPECT_TRUE(auditor.unregister_hook("mod"));
  EXPECT_FALSE(auditor.unregister_hook("mod"));
  EXPECT_EQ(auditor.run_all(0), 0u);
}

TEST(InvariantAuditorDeathTest, AbortModeAbortsOnViolation) {
  EXPECT_DEATH(
      {
        InvariantAuditor auditor{AuditFailMode::kAbort};
        auditor.register_hook("mod", [](AuditScope& s) {
          s.check(false, "fatal-invariant", "boom");
        });
        auditor.run_all(ms(1));
      },
      "fatal-invariant");
}

// --- event queue / simulator audits ---

TEST(EventQueueAudit, CleanQueuePasses) {
  InvariantAuditor auditor{AuditFailMode::kCollect};
  EventQueue q;
  q.push(ms(1), [] {});
  q.push(ms(2), [] {});
  auditor.register_hook("q", [&](AuditScope& s) { q.audit_invariants(s); });
  EXPECT_EQ(auditor.run_all(0), 0u);
}

TEST(EventQueueAudit, DetectsInjectedOutOfOrderEvent) {
  InvariantAuditor auditor{AuditFailMode::kCollect};
  EventQueue q;
  q.push(ms(10), [] {});
  (void)q.pop();  // queue's notion of "the past" is now 10ms
  // Inject an event behind the clock, bypassing Simulator::schedule_at's
  // monotonicity guard — exactly the corruption a sharded scheduler bug
  // would produce.
  q.push(ms(5), [] {});
  auditor.register_hook("q", [&](AuditScope& s) { q.audit_invariants(s); });
  EXPECT_GE(auditor.run_all(ms(10)), 1u);
  EXPECT_TRUE(has_violation(auditor, "time-monotonic"));
}

TEST(SimulatorAudit, CleanRunPasses) {
  InvariantAuditor auditor{AuditFailMode::kCollect};
  Simulator sim;
  int fired = 0;
  sim.schedule_after(ms(1), [&] { ++fired; });
  sim.schedule_after(ms(2), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 2);
  auditor.register_hook("sim",
                        [&](AuditScope& s) { sim.audit_invariants(s); });
  EXPECT_EQ(auditor.run_all(sim.now()), 0u);
}

// --- Maglev audits ---

BackendPool small_pool() {
  BackendPool pool;
  pool.push_back({0, "s0", make_ipv4(10, 2, 0, 1), 1, true});
  pool.push_back({1, "s1", make_ipv4(10, 2, 0, 2), 1, true});
  pool.push_back({2, "s2", make_ipv4(10, 2, 0, 3), 1, true});
  return pool;
}

TEST(MaglevAudit, HealthyTablePasses) {
  InvariantAuditor auditor{AuditFailMode::kCollect};
  const auto pool = small_pool();
  MaglevTable table{127};
  table.build(pool);
  table.shift_slots(0, 0.1);  // audits must hold after α-shifts too
  auditor.register_hook("maglev", [&](AuditScope& s) {
    table.audit_invariants(s, &pool);
  });
  EXPECT_EQ(auditor.run_all(0), 0u);
}

TEST(MaglevAudit, DetectsCorruptedSlotOwner) {
  InvariantAuditor auditor{AuditFailMode::kCollect};
  const auto pool = small_pool();
  MaglevTable table{127};
  table.build(pool);
  table.corrupt_slot_for_test(42, BackendId{9999});
  auditor.register_hook("maglev", [&](AuditScope& s) {
    table.audit_invariants(s, &pool);
  });
  EXPECT_GE(auditor.run_all(0), 1u);
  EXPECT_TRUE(has_violation(auditor, "slot-owner-valid"));
}

TEST(MaglevAudit, DetectsEmptySlot) {
  InvariantAuditor auditor{AuditFailMode::kCollect};
  const auto pool = small_pool();
  MaglevTable table{127};
  table.build(pool);
  table.corrupt_slot_for_test(7, kNoBackend);
  auditor.register_hook("maglev", [&](AuditScope& s) {
    table.audit_invariants(s, &pool);
  });
  EXPECT_GE(auditor.run_all(0), 1u);
  EXPECT_TRUE(has_violation(auditor, "slot-populated"));
}

TEST(MaglevAudit, DetectsOwnerAbsentFromPool) {
  InvariantAuditor auditor{AuditFailMode::kCollect};
  auto pool = small_pool();
  MaglevTable table{127};
  table.build(pool);
  pool.pop_back();  // backend 2 disappears from the pool, table still has it
  auditor.register_hook("maglev", [&](AuditScope& s) {
    table.audit_invariants(s, &pool);
  });
  EXPECT_GE(auditor.run_all(0), 1u);
  EXPECT_TRUE(has_violation(auditor, "slot-owner-in-pool"));
}

// --- conntrack audits ---

TEST(ConntrackAudit, CleanTablePasses) {
  InvariantAuditor auditor{AuditFailMode::kCollect};
  ConnTracker ct;
  ct.insert(test_flow(1000), 0, ms(1));
  ct.insert(test_flow(1001), 1, ms(2));
  ct.mark_closing(test_flow(1001), ms(3));
  auditor.register_hook("ct", [&](AuditScope& s) {
    ct.audit_invariants(s, BackendId{2});
  });
  EXPECT_EQ(auditor.run_all(ms(5)), 0u);
}

TEST(ConntrackAudit, DetectsFutureTimestamp) {
  InvariantAuditor auditor{AuditFailMode::kCollect};
  ConnTracker ct;
  ct.insert(test_flow(1000), 0, sec(100));  // entry stamped in the future
  auditor.register_hook("ct",
                        [&](AuditScope& s) { ct.audit_invariants(s); });
  EXPECT_GE(auditor.run_all(ms(1)), 1u);
  EXPECT_TRUE(has_violation(auditor, "last-seen-in-past"));
}

TEST(ConntrackAudit, DetectsOutOfPoolBackend) {
  InvariantAuditor auditor{AuditFailMode::kCollect};
  ConnTracker ct;
  ct.insert(test_flow(1000), 5, ms(1));  // id 5 with a pool of 2
  auditor.register_hook("ct", [&](AuditScope& s) {
    ct.audit_invariants(s, BackendId{2});
  });
  EXPECT_GE(auditor.run_all(ms(2)), 1u);
  EXPECT_TRUE(has_violation(auditor, "backend-in-pool"));
}

// --- flow-state-table / estimator audits ---

TEST(FlowStateAudit, CleanStatePasses) {
  InvariantAuditor auditor{AuditFailMode::kCollect};
  EnsembleTimeout est;
  FlowStateTable table;
  FlowState& state = table.get_or_create(test_flow(1000), ms(1));
  est.on_packet(state.ensemble, ms(1));
  est.on_packet(state.ensemble, ms(2));
  auditor.register_hook("flows", [&](AuditScope& s) {
    table.audit_invariants(s, est.k());
  });
  EXPECT_EQ(auditor.run_all(ms(3)), 0u);
}

TEST(FlowStateAudit, DetectsCorruptedChosenIndex) {
  InvariantAuditor auditor{AuditFailMode::kCollect};
  EnsembleTimeout est;
  FlowStateTable table;
  FlowState& state = table.get_or_create(test_flow(1000), ms(1));
  est.on_packet(state.ensemble, ms(1));
  state.ensemble.chosen = 99;  // impossible ladder index
  auditor.register_hook("flows", [&](AuditScope& s) {
    table.audit_invariants(s, est.k());
  });
  EXPECT_GE(auditor.run_all(ms(2)), 1u);
  EXPECT_TRUE(has_violation(auditor, "chosen-in-range"));
}

TEST(FlowStateAudit, DetectsBatchTimerInversion) {
  InvariantAuditor auditor{AuditFailMode::kCollect};
  EnsembleTimeout est;
  FlowStateTable table;
  FlowState& state = table.get_or_create(test_flow(1000), ms(1));
  est.on_packet(state.ensemble, ms(1));
  // Batch allegedly started *after* the last packet — the exact corruption
  // a signed-overflow in SimTime arithmetic would leave behind.
  state.ensemble.per_timeout[0].time_last_batch = ms(9);
  state.ensemble.per_timeout[0].time_last_pkt = ms(3);
  auditor.register_hook("flows", [&](AuditScope& s) {
    table.audit_invariants(s, est.k());
  });
  EXPECT_GE(auditor.run_all(ms(10)), 1u);
  EXPECT_TRUE(has_violation(auditor, "batch-timer-ordered"));
}

// --- state digest primitives ---

TEST(StateDigest, OrderSensitive) {
  StateDigest a, b;
  a.mix(1);
  a.mix(2);
  b.mix(2);
  b.mix(1);
  EXPECT_NE(a.value(), b.value());
}

TEST(StateDigest, DeterministicAndHexFormatted) {
  StateDigest a, b;
  for (std::uint64_t v : {3u, 1u, 4u, 1u, 5u}) {
    a.mix(v);
    b.mix(v);
  }
  EXPECT_EQ(a.value(), b.value());
  EXPECT_EQ(a.hex().size(), 16u);
}

TEST(StateDigest, UnorderedCombineIsOrderIndependent) {
  StateDigest e1, e2;
  e1.mix_string("flow-a");
  e2.mix_string("flow-b");

  UnorderedDigest u1, u2;
  u1.add(e1);
  u1.add(e2);
  u2.add(e2);
  u2.add(e1);

  StateDigest a, b;
  u1.mix_into(a);
  u2.mix_into(b);
  EXPECT_EQ(a.value(), b.value());
  EXPECT_EQ(u1.count(), 2u);
}

// --- full rig: audits + determinism ---

ClusterRigConfig tiny_rig_config(LbMode mode, std::uint64_t seed) {
  ClusterRigConfig c;
  c.mode = mode;
  c.num_servers = 2;
  c.num_client_hosts = 2;
  c.maglev_table_size = 251;
  c.duration = ms(600);
  c.inject_time = ms(300);
  c.seed = seed;
  return c;
}

TEST(ClusterRigAudit, FullAuditCleanAfterRun) {
  ClusterRig rig(tiny_rig_config(LbMode::kInband, 2022));
  rig.run();
  // kAbort mode: a violation would already have aborted the periodic audit
  // in audit-enabled builds; this asserts the on-demand path stays clean.
  EXPECT_EQ(rig.run_full_audit(), 0u);
  EXPECT_GE(rig.auditor().hook_count(), 5u);
}

TEST(Determinism, SameSeedSameDigest) {
  for (const LbMode mode : {LbMode::kInband, LbMode::kStaticMaglev}) {
    std::uint64_t first = 0;
    {
      ClusterRig rig(tiny_rig_config(mode, 2022));
      rig.run();
      first = rig.state_digest();
    }
    std::uint64_t second = 0;
    {
      ClusterRig rig(tiny_rig_config(mode, 2022));
      rig.run();
      second = rig.state_digest();
    }
    EXPECT_EQ(first, second) << "mode " << lb_mode_name(mode);
  }
}

TEST(Determinism, DifferentSeedDifferentDigest) {
  ClusterRig a(tiny_rig_config(LbMode::kInband, 2022));
  a.run();
  ClusterRig b(tiny_rig_config(LbMode::kInband, 2023));
  b.run();
  EXPECT_NE(a.state_digest(), b.state_digest());
}

}  // namespace
}  // namespace inband
