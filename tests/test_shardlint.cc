// Tests for shardlint, the whole-program shard-ownership analyzer
// (tools/detlint).
//
// Two layers, mirroring test_detlint.cc / test_hotlint.cc:
//  - engine tests call analyze_shard() directly and pin the domain-walk
//    semantics (channel cut, owner transparency, member-edge cut at declared
//    domain boundaries), each ownership rule down to the finding line, the
//    waiver mechanics, and the partition-map schema;
//  - binary tests shell the built `shardlint` executable over the fixture
//    corpus (tools/detlint/fixtures/shardlint) and assert the end-to-end
//    contract: escape/rng/seq fixtures are flagged, channel-clean and
//    fully-annotated fixtures exit 0, waiver hygiene fires, and the
//    --partition / --check-partition round trip holds.

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "shardlint.h"

namespace {

using detlint::Finding;
using detlint::ShardReport;
using detlint::SourceInput;
using detlint::analyze_shard;

std::vector<Finding> FindingsFor(const ShardReport& report,
                                 const std::string& rule) {
  std::vector<Finding> out;
  for (const Finding& f : report.findings) {
    if (f.rule == rule) out.push_back(f);
  }
  return out;
}

ShardReport Analyze(const char* src) {
  return analyze_shard({SourceInput{"x.cc", src}});
}

// ---------------------------------------------------------------------------
// Engine: shard-rng.
// ---------------------------------------------------------------------------

TEST(ShardlintEngine, RngReachableFromTwoDomainsFlagged) {
  ShardReport r = Analyze(R"(
struct SharedNoise {
  Rng rng_;
  double draw() { return rng_.uniform(); }
};
INBAND_SHARD_LOCAL(lb) struct Balancer {
  SharedNoise* noise_ = nullptr;
  INBAND_HOT int pick() { return noise_->draw() > 0.5 ? 1 : 0; }
};
INBAND_SHARD_LOCAL(shard) struct Server {
  SharedNoise* noise_ = nullptr;
  INBAND_HOT void serve() { noise_->draw(); }
};
)");
  auto hits = FindingsFor(r, "shard-rng");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 3);
  EXPECT_NE(hits[0].message.find("lb, shard"), std::string::npos);
  // The chain walks root -> method of the shared class.
  ASSERT_GE(hits[0].chain.size(), 2u);
  EXPECT_NE(hits[0].chain.back().find("draw"), std::string::npos);
}

TEST(ShardlintEngine, RngPassedIntoAnotherObjectFlagged) {
  // The pre-refactor injector bug: the owner's stream handed across an
  // object boundary as an argument. Path-independent — one domain suffices.
  ShardReport r = Analyze(R"(
struct Injector {
  long extra_time(long base, Rng& rng) { return base + rng.next_u64() % 8; }
};
INBAND_SHARD_LOCAL(shard) struct Worker {
  Rng rng_;
  Injector inj_;
  INBAND_HOT long handle(long base) {
    return base + inj_.extra_time(base, rng_);
  }
};
)");
  auto hits = FindingsFor(r, "shard-rng");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 9);
  EXPECT_NE(hits[0].message.find("passed into"), std::string::npos);
  EXPECT_NE(hits[0].message.find("inj_.extra_time"), std::string::npos);
}

TEST(ShardlintEngine, DrawingFromOwnMemberRngIsClean) {
  ShardReport r = Analyze(R"(
INBAND_SHARD_LOCAL(shard) struct Server {
  Rng rng_;
  INBAND_HOT long serve() { return rng_.next_u64() % 128; }
};
)");
  EXPECT_TRUE(r.findings.empty());
}

// ---------------------------------------------------------------------------
// Engine: shard-seq and unannotated-shared.
// ---------------------------------------------------------------------------

TEST(ShardlintEngine, SharedSeqCounterFlaggedAndSuppressesUnannotated) {
  ShardReport r = Analyze(R"(
struct IdAllocator {
  long next_flow_id_ = 0;
  long alloc() { return next_flow_id_++; }
};
INBAND_SHARD_LOCAL(lb) struct Lb {
  IdAllocator* ids_ = nullptr;
  INBAND_HOT void admit() { ids_->alloc(); }
};
INBAND_SHARD_LOCAL(shard) struct Srv {
  IdAllocator* ids_ = nullptr;
  INBAND_HOT void open() { ids_->alloc(); }
};
)");
  auto hits = FindingsFor(r, "shard-seq");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 3);
  // The member finding carries the class diagnosis; no duplicate
  // class-level unannotated-shared nag on top of it.
  EXPECT_TRUE(FindingsFor(r, "unannotated-shared").empty());
}

TEST(ShardlintEngine, UnannotatedMutableStateSharedAcrossDomainsFlagged) {
  ShardReport r = Analyze(R"(
struct Scratch {
  long v_ = 0;
  void set(long x) { v_ = x; }
};
INBAND_SHARD_LOCAL(lb) struct Lb {
  Scratch* pad_ = nullptr;
  INBAND_HOT void admit() { pad_->set(1); }
};
INBAND_SHARD_LOCAL(shard) struct Srv {
  Scratch* pad_ = nullptr;
  INBAND_HOT void open() { pad_->set(2); }
};
)");
  auto hits = FindingsFor(r, "unannotated-shared");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 2);  // anchored at the class
  EXPECT_NE(hits[0].message.find("Scratch"), std::string::npos);
}

TEST(ShardlintEngine, MutableStaticMemberFlaggedFromOneDomain) {
  // Process-wide state: flagged as soon as the class is on any hot path,
  // multi-domain reach not required.
  ShardReport r = Analyze(R"(
struct Registry {
  static long live_count_;
  void note() { ++live_count_; }
};
INBAND_SHARD_LOCAL(lb) struct Lb {
  Registry reg_;
  INBAND_HOT void admit() { reg_.note(); }
};
)");
  auto hits = FindingsFor(r, "unannotated-shared");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 3);
  EXPECT_NE(hits[0].message.find("live_count_"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Engine: shard-escape.
// ---------------------------------------------------------------------------

TEST(ShardlintEngine, RawPointerAliasAcrossDomainsFlaggedUniquePtrExempt) {
  ShardReport r = Analyze(R"(
INBAND_SHARD_LOCAL(shard) struct ServerState {
  long inflight_ = 0;
};
INBAND_SHARD_LOCAL(lb) struct Director {
  ServerState* shortcut_ = nullptr;
  std::unique_ptr<ServerState> owned_;
  INBAND_HOT void route() {}
};
)");
  auto hits = FindingsFor(r, "shard-escape");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 6);  // shortcut_, not owned_
  EXPECT_NE(hits[0].message.find("shortcut_"), std::string::npos);
}

TEST(ShardlintEngine, QualifiedCallAcrossDomainsIsReachEscape) {
  ShardReport r = Analyze(R"(
INBAND_SHARD_LOCAL(shard) struct ServerState {
  long inflight_ = 0;
  void account(long d) { inflight_ += d; }
};
INBAND_SHARD_LOCAL(lb) struct Director {
  INBAND_HOT void route(ServerState& s) { s.ServerState::account(1); }
};
)");
  auto hits = FindingsFor(r, "shard-escape");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 2);
  EXPECT_NE(hits[0].message.find("reached from domain 'lb'"),
            std::string::npos);
}

TEST(ShardlintEngine, MemberCallCutAtDeclaredForeignDomainBoundary) {
  // Name-matched member dispatch over-approximates; a declared foreign
  // domain is trusted over the lexical match, so no reach-form escape.
  ShardReport r = Analyze(R"(
INBAND_SHARD_LOCAL(shard) struct ServerState {
  long inflight_ = 0;
  void account(long d) { inflight_ += d; }
};
INBAND_SHARD_LOCAL(lb) struct Director {
  INBAND_HOT void route(ServerState& s) { s.account(1); }
};
)");
  EXPECT_TRUE(r.findings.empty());
}

// ---------------------------------------------------------------------------
// Engine: domain-walk semantics.
// ---------------------------------------------------------------------------

TEST(ShardlintEngine, ChannelStateExemptAndWalkCutAtChannel) {
  ShardReport r = Analyze(R"(
struct Hidden {
  long order_ = 0;
  void bump() { ++order_; }
};
INBAND_SHARD_CHANNEL struct Mailbox {
  long pending_ = 0;
  Hidden h_;
  void post(long m) { pending_ += m; h_.bump(); }
};
INBAND_SHARD_LOCAL(lb) struct Router {
  Mailbox* box_ = nullptr;
  INBAND_HOT void forward() { box_->post(1); }
};
INBAND_SHARD_LOCAL(shard) struct Server {
  Mailbox* box_ = nullptr;
  INBAND_HOT void drain() { box_->post(0); }
};
)");
  // Mailbox's own mutable state is the sanctioned crossing, and the walk
  // does not continue out of it into Hidden.
  EXPECT_TRUE(r.findings.empty());
}

TEST(ShardlintEngine, OwnerClassesAreDomainTransparent) {
  ShardReport r = Analyze(R"(
INBAND_SHARD_LOCAL(owner) struct Counter {
  long n_ = 0;
  void bump() { ++n_; }
};
INBAND_SHARD_LOCAL(lb) struct Lb {
  Counter stats_;
  INBAND_HOT void admit() { stats_.bump(); }
};
INBAND_SHARD_LOCAL(shard) struct Srv {
  Counter stats_;
  INBAND_HOT void open() { stats_.bump(); }
};
)");
  EXPECT_TRUE(r.findings.empty());
}

TEST(ShardlintEngine, SharedConstClassesAreTrusted) {
  ShardReport r = Analyze(R"(
INBAND_SHARD_SHARED_CONST struct Plan {
  long hits_ = 0;
  long rate() { return ++hits_; }
};
INBAND_SHARD_LOCAL(lb) struct Lb {
  Plan* plan_ = nullptr;
  INBAND_HOT long admit() { return plan_->rate(); }
};
INBAND_SHARD_LOCAL(shard) struct Srv {
  Plan* plan_ = nullptr;
  INBAND_HOT long open() { return plan_->rate(); }
};
)");
  EXPECT_TRUE(r.findings.empty());
}

TEST(ShardlintEngine, RegistryAndCallGraphSpanFiles) {
  ShardReport r = analyze_shard({
      SourceInput{"state.h", R"(
struct SharedNoise {
  Rng rng_;
  double draw() { return rng_.uniform(); }
};
)"},
      SourceInput{"a.cc", R"(
#include "state.h"
INBAND_SHARD_LOCAL(lb) struct Balancer {
  SharedNoise* noise_ = nullptr;
  INBAND_HOT int pick() { return noise_->draw() > 0.5 ? 1 : 0; }
};
)"},
      SourceInput{"b.cc", R"(
#include "state.h"
INBAND_SHARD_LOCAL(shard) struct Server {
  SharedNoise* noise_ = nullptr;
  INBAND_HOT void serve() { noise_->draw(); }
};
)"},
  });
  auto hits = FindingsFor(r, "shard-rng");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].file, "state.h");
  EXPECT_EQ(r.domains, 2u);
  EXPECT_EQ(r.roots, 2u);
}

// ---------------------------------------------------------------------------
// Engine: waivers.
// ---------------------------------------------------------------------------

TEST(ShardlintEngine, JustifiedWaiverWaives) {
  ShardReport r = Analyze(R"(
struct EpochCounter {
  // shardlint:allow(shard-seq): epoch counter is reconciled at the barrier
  long next_epoch_seq_ = 0;
  long alloc() { return next_epoch_seq_++; }
};
INBAND_SHARD_LOCAL(lb) struct A {
  EpochCounter* e_ = nullptr;
  INBAND_HOT void f() { e_->alloc(); }
};
INBAND_SHARD_LOCAL(shard) struct B {
  EpochCounter* e_ = nullptr;
  INBAND_HOT void g() { e_->alloc(); }
};
)");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_TRUE(r.findings[0].waived);
  EXPECT_EQ(r.unwaived(), 0u);
  EXPECT_EQ(r.waived(), 1u);
  EXPECT_TRUE(r.unused_waivers.empty());
}

TEST(ShardlintEngine, UnknownRuleAndMissingReasonAreBadWaivers) {
  ShardReport r = Analyze(R"(
INBAND_SHARD_LOCAL(lb) struct A {
  // shardlint:allow(shard-warp): no such rule
  long v_ = 0;
  // shardlint:allow(shard-rng)
  INBAND_HOT void f() { ++v_; }
};
)");
  EXPECT_EQ(FindingsFor(r, "bad-waiver").size(), 2u);
}

TEST(ShardlintEngine, WaiverMatchingNothingIsReportedUnused) {
  ShardReport r = Analyze(R"(
INBAND_SHARD_LOCAL(lb) struct A {
  // shardlint:allow(shard-escape): nothing here escapes anywhere
  INBAND_HOT void f() {}
};
)");
  EXPECT_TRUE(r.findings.empty());
  ASSERT_EQ(r.unused_waivers.size(), 1u);
  EXPECT_EQ(r.unused_waivers[0].line, 3);
}

// ---------------------------------------------------------------------------
// Engine: partition map and statistics.
// ---------------------------------------------------------------------------

TEST(ShardlintEngine, PartitionMapListsEveryBucketAndReach) {
  ShardReport r = Analyze(R"(
INBAND_SHARD_LOCAL(owner) struct Counter { long n_ = 0; };
INBAND_SHARD_SHARED_CONST struct Plan { long rate_ = 3; };
INBAND_SHARD_CHANNEL struct Mailbox { long pending_ = 0; };
struct Scratch { long v_ = 0; };
INBAND_SHARD_LOCAL(lb) struct Lb {
  INBAND_HOT void admit() {}
};
INBAND_SHARD_LOCAL(shard) struct Srv {
  INBAND_HOT void open() {}
};
)");
  const std::string& p = r.partition_json;
  EXPECT_NE(p.find("\"version\": 1"), std::string::npos) << p;
  EXPECT_NE(p.find("\"lb\": [\"Lb\"]"), std::string::npos) << p;
  EXPECT_NE(p.find("\"shard\": [\"Srv\"]"), std::string::npos) << p;
  EXPECT_NE(p.find("\"owner\": [\"Counter\"]"), std::string::npos) << p;
  EXPECT_NE(p.find("\"channels\": [\"Mailbox\"]"), std::string::npos) << p;
  EXPECT_NE(p.find("\"shared_const\": [\"Plan\"]"), std::string::npos) << p;
  EXPECT_NE(p.find("\"unannotated\": [\"Scratch\"]"), std::string::npos) << p;
  // Each domain's walk touches its own root class.
  EXPECT_NE(p.find("\"Lb\": [\"lb\"]"), std::string::npos) << p;
  EXPECT_NE(p.find("\"Srv\": [\"shard\"]"), std::string::npos) << p;
  EXPECT_EQ(r.classes, 6u);
  EXPECT_EQ(r.annotated, 5u);
  EXPECT_EQ(r.roots, 2u);
  EXPECT_EQ(r.domains, 2u);
}

TEST(ShardlintEngine, PartitionMapIsDeterministicAcrossInputOrder) {
  const char* a = R"(
INBAND_SHARD_LOCAL(lb) struct Lb { INBAND_HOT void admit() {} };
)";
  const char* b = R"(
INBAND_SHARD_LOCAL(shard) struct Srv { INBAND_HOT void open() {} };
)";
  ShardReport fwd = analyze_shard({SourceInput{"a.cc", a}, {"b.cc", b}});
  ShardReport rev = analyze_shard({SourceInput{"b.cc", b}, {"a.cc", a}});
  EXPECT_EQ(fwd.partition_json, rev.partition_json);
}

// ---------------------------------------------------------------------------
// Binary: shell `shardlint` over the fixture corpus.
// ---------------------------------------------------------------------------

struct RunResult {
  int exit_code = -1;
  std::string out;
};

RunResult RunShardlint(const std::string& args) {
  const std::string cmd = std::string(SHARDLINT_BIN) + " " + args + " 2>&1";
  RunResult r;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  char buf[4096];
  size_t n = 0;
  while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) r.out.append(buf, n);
  const int status = pclose(pipe);
  r.exit_code = (status >= 0 && WIFEXITED(status)) ? WEXITSTATUS(status) : -1;
  return r;
}

std::string Fixture(const std::string& rel) {
  return std::string(SHARDLINT_FIXTURES) + "/" + rel;
}

// Extracts the N from `"<key>": N` in the JSON counts object.
int JsonCount(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const size_t pos = json.rfind(needle);
  if (pos == std::string::npos) return -1;
  return std::atoi(json.c_str() + pos + needle.size());
}

TEST(ShardlintBinary, EscapeFixtureCaughtBothForms) {
  RunResult r = RunShardlint("--json " + Fixture("escape.cc"));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.out.find("\"rule\": \"shard-escape\""), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("aliases"), std::string::npos);
  EXPECT_NE(r.out.find("reached from domain"), std::string::npos);
  EXPECT_EQ(JsonCount(r.out, "unwaived"), 2) << r.out;
}

TEST(ShardlintBinary, SharedRngFixtureCaughtBothForms) {
  RunResult r = RunShardlint("--json " + Fixture("shared_rng.cc"));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.out.find("\"rule\": \"shard-rng\""), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("reachable from domains"), std::string::npos);
  EXPECT_NE(r.out.find("passed into"), std::string::npos);
  EXPECT_EQ(JsonCount(r.out, "unwaived"), 2) << r.out;
}

TEST(ShardlintBinary, SeqSharedFixtureCaught) {
  RunResult r = RunShardlint("--json " + Fixture("seq_shared.cc"));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.out.find("\"rule\": \"shard-seq\""), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("\"rule\": \"unannotated-shared\""), std::string::npos);
  EXPECT_NE(r.out.find("live_count_"), std::string::npos);
  EXPECT_EQ(JsonCount(r.out, "unwaived"), 3) << r.out;
}

TEST(ShardlintBinary, ChannelCleanAndCleanFixturesExitZero) {
  EXPECT_EQ(RunShardlint(Fixture("channel_clean.cc")).exit_code, 0);
  RunResult clean = RunShardlint("--json " + Fixture("clean.cc"));
  EXPECT_EQ(clean.exit_code, 0);
  EXPECT_EQ(JsonCount(clean.out, "unwaived"), 0) << clean.out;
  EXPECT_EQ(JsonCount(clean.out, "waived"), 0) << clean.out;
}

TEST(ShardlintBinary, WaiverHygieneFires) {
  RunResult r = RunShardlint(Fixture("waiver_hygiene.cc"));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.out.find("bad-waiver"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("unused waiver"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("waived [shard-seq]"), std::string::npos) << r.out;
}

TEST(ShardlintBinary, JsonReportCarriesOwnershipStats) {
  RunResult r = RunShardlint("--json " + Fixture("clean.cc"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("\"ownership\""), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("\"domains\": 2"), std::string::npos) << r.out;
}

TEST(ShardlintBinary, PartitionFlagEmitsMap) {
  RunResult r = RunShardlint("--partition=json " + Fixture("clean.cc"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("\"version\": 1"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("\"domains\""), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("\"Server\""), std::string::npos) << r.out;
}

TEST(ShardlintBinary, CheckPartitionRoundTripAndStaleDetection) {
  const std::string map = testing::TempDir() + "shardlint_partition.json";
  RunResult gen =
      RunShardlint("--partition=json " + Fixture("clean.cc"));
  ASSERT_EQ(gen.exit_code, 0);
  {
    std::ofstream out(map, std::ios::binary);
    out << gen.out;
  }
  EXPECT_EQ(
      RunShardlint("--check-partition=" + map + " " + Fixture("clean.cc"))
          .exit_code,
      0);
  {
    std::ofstream out(map, std::ios::binary | std::ios::app);
    out << "stale\n";
  }
  RunResult stale =
      RunShardlint("--check-partition=" + map + " " + Fixture("clean.cc"));
  EXPECT_EQ(stale.exit_code, 1);
  EXPECT_NE(stale.out.find("stale"), std::string::npos) << stale.out;
  std::remove(map.c_str());
}

TEST(ShardlintBinary, ListRulesNamesEveryRule) {
  RunResult r = RunShardlint("--list-rules");
  EXPECT_EQ(r.exit_code, 0);
  for (const std::string& rule : detlint::shard_rule_names()) {
    EXPECT_NE(r.out.find(rule), std::string::npos) << rule;
  }
}

TEST(ShardlintBinary, UsageErrorsExitTwo) {
  EXPECT_EQ(RunShardlint("--frobnicate x.cc").exit_code, 2);
  EXPECT_EQ(RunShardlint("--check-partition= x.cc").exit_code, 2);
  EXPECT_EQ(RunShardlint("").exit_code, 2);
}

}  // namespace
