// Unit tests: util module (time, rng, csv, flags, logging, ring buffer).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <deque>
#include <numeric>
#include <sstream>

#include "util/assert.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/ring_buffer.h"
#include "util/rng.h"
#include "util/time.h"

namespace inband {
namespace {

using namespace inband::time_literals;

// --- time ---

TEST(Time, LiteralConversions) {
  EXPECT_EQ(1_us, 1000);
  EXPECT_EQ(1_ms, 1'000'000);
  EXPECT_EQ(1_s, 1'000'000'000);
  EXPECT_EQ(us(64), 64'000);
  EXPECT_EQ(ms(64), 64 * 1'000'000);
}

TEST(Time, ToFloatingUnits) {
  EXPECT_DOUBLE_EQ(to_us(1500), 1.5);
  EXPECT_DOUBLE_EQ(to_ms(2'500'000), 2.5);
  EXPECT_DOUBLE_EQ(to_sec(500'000'000), 0.5);
}

TEST(Time, FormatDurationPicksUnits) {
  EXPECT_EQ(format_duration(0), "0ns");
  EXPECT_EQ(format_duration(999), "999ns");
  EXPECT_EQ(format_duration(1000), "1us");
  EXPECT_EQ(format_duration(64'000), "64us");
  EXPECT_EQ(format_duration(1'234'000), "1.234ms");
  EXPECT_EQ(format_duration(2'500'000'000), "2.5s");
}

TEST(Time, FormatDurationNegative) {
  EXPECT_EQ(format_duration(-1500), "-1.5us");
}

TEST(Time, FormatTrimsTrailingZeros) {
  EXPECT_EQ(format_duration(1'500'000), "1.5ms");
  EXPECT_EQ(format_duration(1'000'000), "1ms");
}

// --- rng ---

TEST(Rng, DeterministicForSameSeed) {
  Rng a{12345};
  Rng b{12345};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ZeroSeedIsUsable) {
  Rng r{0};
  // splitmix seeding must avoid the all-zero state.
  EXPECT_NE(r(), 0u);
  std::uint64_t x = 0;
  for (int i = 0; i < 10; ++i) x |= r();
  EXPECT_NE(x, 0u);
}

TEST(Rng, UniformU64RespectsBounds) {
  Rng r{7};
  for (int i = 0; i < 10'000; ++i) {
    const auto v = r.uniform_u64(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformU64SingletonRange) {
  Rng r{7};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_u64(42, 42), 42u);
}

TEST(Rng, UniformU64IsRoughlyUniform) {
  Rng r{99};
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100'000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) {
    ++counts[r.uniform_u64(0, kBuckets - 1)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets / 10);
  }
}

TEST(Rng, UniformDoubleInHalfOpenUnitInterval) {
  Rng r{3};
  for (int i = 0; i < 10'000; ++i) {
    const double v = r.uniform_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ExponentialMeanMatches) {
  Rng r{11};
  double sum = 0.0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) sum += r.exponential(250.0);
  EXPECT_NEAR(sum / kN, 250.0, 5.0);
}

TEST(Rng, NormalMomentsMatch) {
  Rng r{13};
  constexpr int kN = 200'000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double v = r.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sq / kN, 1.0, 0.02);
}

TEST(Rng, LognormalMedianMatches) {
  Rng r{17};
  constexpr int kN = 100'001;
  std::vector<double> vals(kN);
  for (auto& v : vals) v = r.lognormal_median(100.0, 0.5);
  std::nth_element(vals.begin(), vals.begin() + kN / 2, vals.end());
  EXPECT_NEAR(vals[kN / 2], 100.0, 3.0);
}

TEST(Rng, ParetoRespectsScale) {
  Rng r{19};
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_GE(r.pareto(5.0, 2.0), 5.0);
  }
}

TEST(Rng, BernoulliProbability) {
  Rng r{23};
  int hits = 0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Splitmix, IsStableAcrossCalls) {
  EXPECT_EQ(splitmix64(0), splitmix64(0));
  EXPECT_NE(splitmix64(1), splitmix64(2));
}

// --- zipf ---

TEST(Zipf, DegenerateSingleElement) {
  Rng r{1};
  ZipfDistribution z{1, 1.0};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(z(r), 1u);
}

TEST(Zipf, RespectsRange) {
  Rng r{2};
  ZipfDistribution z{1000, 0.99};
  for (int i = 0; i < 50'000; ++i) {
    const auto v = z(r);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 1000u);
  }
}

TEST(Zipf, SkewFavorsSmallKeys) {
  Rng r{3};
  ZipfDistribution z{10'000, 1.1};
  int head = 0;
  constexpr int kN = 50'000;
  for (int i = 0; i < kN; ++i) {
    if (z(r) <= 10) ++head;
  }
  // With s=1.1 the top-10 keys should carry a large share of draws.
  EXPECT_GT(head, kN / 4);
}

TEST(Zipf, ZeroExponentIsNearUniform) {
  Rng r{4};
  ZipfDistribution z{100, 0.0};
  std::vector<int> counts(101, 0);
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) ++counts[static_cast<std::size_t>(z(r))];
  for (std::size_t k = 1; k <= 100; ++k) {
    EXPECT_NEAR(counts[k], kN / 100, kN / 100 / 2) << "key " << k;
  }
}

// --- csv ---

TEST(Csv, WritesHeaderAndRows) {
  std::ostringstream os;
  CsvWriter csv{os};
  csv.header("a", "b", "c");
  csv.row(1, 2.5, "x");
  EXPECT_EQ(os.str(), "a,b,c\n1,2.5,x\n");
  EXPECT_EQ(csv.rows_written(), 1u);
}

TEST(Csv, QuotesSpecialCharacters) {
  std::ostringstream os;
  CsvWriter csv{os};
  csv.header("v");
  csv.row("has,comma");
  csv.row("has\"quote");
  EXPECT_EQ(os.str(), "v\n\"has,comma\"\n\"has\"\"quote\"\n");
}

TEST(Csv, CompactDoubleFormat) {
  std::ostringstream os;
  CsvWriter csv{os};
  csv.header("v");
  csv.row(0.1);
  csv.row(1e9);
  EXPECT_EQ(os.str(), "v\n0.1\n1e+09\n");
}

TEST(Csv, NanRendered) {
  std::ostringstream os;
  CsvWriter csv{os};
  csv.header("v");
  csv.row(std::nan(""));
  EXPECT_EQ(os.str(), "v\nnan\n");
}

TEST(Csv, FileConstructorThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter{"/nonexistent_dir_zzz/file.csv"},
               std::runtime_error);
}

// --- flags ---

TEST(Flags, ParsesAllTypes) {
  bool b = false;
  std::int64_t i = 0;
  double d = 0.0;
  std::string s;
  FlagSet flags;
  flags.add("b", &b, "bool");
  flags.add("i", &i, "int");
  flags.add("d", &d, "double");
  flags.add("s", &s, "string");
  const char* argv[] = {"prog", "--b", "--i=42", "--d", "2.5", "--s=hello"};
  ASSERT_TRUE(flags.parse(6, argv));
  EXPECT_TRUE(b);
  EXPECT_EQ(i, 42);
  EXPECT_DOUBLE_EQ(d, 2.5);
  EXPECT_EQ(s, "hello");
}

TEST(Flags, DefaultsPreservedWhenAbsent) {
  std::int64_t i = 7;
  FlagSet flags;
  flags.add("i", &i, "int");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.parse(1, argv));
  EXPECT_EQ(i, 7);
}

TEST(Flags, UnknownFlagFails) {
  FlagSet flags;
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(Flags, BadIntValueFails) {
  std::int64_t i = 0;
  FlagSet flags;
  flags.add("i", &i, "int");
  const char* argv[] = {"prog", "--i=abc"};
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(Flags, BadBoolValueFails) {
  bool b = false;
  FlagSet flags;
  flags.add("b", &b, "bool");
  const char* argv[] = {"prog", "--b=maybe"};
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(Flags, HelpReturnsFalse) {
  FlagSet flags;
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(Flags, MissingValueFails) {
  std::int64_t i = 0;
  FlagSet flags;
  flags.add("i", &i, "int");
  const char* argv[] = {"prog", "--i"};
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(Flags, UsageMentionsFlags) {
  std::int64_t i = 0;
  FlagSet flags{"my tool"};
  flags.add("alpha", &i, "the alpha");
  const auto usage = flags.usage("prog");
  EXPECT_NE(usage.find("--alpha"), std::string::npos);
  EXPECT_NE(usage.find("my tool"), std::string::npos);
}

// --- logging ---

TEST(Logging, LevelGate) {
  const LogLevel old = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_TRUE(log_enabled(LogLevel::kError));
  set_log_level(old);
}

// --- assertion macros ---

TEST(AssertMacros, AssertPassesOnTrue) {
  INBAND_ASSERT(1 + 1 == 2);  // must not abort
  int evaluations = 0;
  INBAND_ASSERT(++evaluations == 1);
  EXPECT_EQ(evaluations, 1);  // condition evaluated exactly once
}

TEST(AssertMacrosDeathTest, AssertAbortsWithMessage) {
  EXPECT_DEATH(INBAND_ASSERT(false, "ctx message"), "assertion failed");
  EXPECT_DEATH(INBAND_ASSERT(2 < 1, "ctx message"), "ctx message");
}

TEST(AssertMacros, DcheckMatchesBuildType) {
  int evaluations = 0;
  INBAND_DCHECK(++evaluations > 0);
#ifdef NDEBUG
  EXPECT_EQ(evaluations, 0);  // compiled out
#else
  EXPECT_EQ(evaluations, 1);
#endif
}

#ifndef NDEBUG
TEST(AssertMacrosDeathTest, DcheckAbortsInDebug) {
  EXPECT_DEATH(INBAND_DCHECK(false, "dcheck fired"), "dcheck fired");
}
#endif

TEST(AssertMacros, AuditCompiledOnlyWhenEnabled) {
  int evaluations = 0;
  INBAND_AUDIT(++evaluations > 0);
#ifdef INBAND_ENABLE_AUDITS
  EXPECT_TRUE(kAuditsEnabled);
  EXPECT_EQ(evaluations, 1);
#else
  EXPECT_FALSE(kAuditsEnabled);
  // The condition must be syntax-checked but never evaluated.
  EXPECT_EQ(evaluations, 0);
#endif
}

TEST(AssertMacros, AuditBlockCompiledOnlyWhenEnabled) {
  int runs = 0;
  INBAND_AUDIT_BLOCK(++runs);
  EXPECT_EQ(runs, kAuditsEnabled ? 1 : 0);
}

#ifdef INBAND_ENABLE_AUDITS
TEST(AssertMacrosDeathTest, AuditAbortsWhenEnabled) {
  EXPECT_DEATH(INBAND_AUDIT(false, "audit fired"), "audit fired");
}
#else
TEST(AssertMacros, AuditNeverAbortsWhenDisabled) {
  INBAND_AUDIT(false, "must be compiled out");  // reaching here is the test
  SUCCEED();
}
#endif

// --- ring buffer ---

// Growth with a wrapped head: fill to capacity, pop past the midpoint, push
// until the tail wraps in front of the head, then push one more so grow()
// relocates a ring whose logical order straddles the physical end. The
// relocation must preserve FIFO order (issue 10 flagged this path; pinned
// here against std::deque).
TEST(RingBuffer, GrowWithWrappedHeadPreservesFifo) {
  RingBuffer<std::uint64_t> ring;
  std::deque<std::uint64_t> oracle;
  std::uint64_t next = 0;
  auto push = [&] {
    ring.push(next);
    oracle.push_back(next);
    ++next;
  };
  auto pop = [&] {
    ASSERT_EQ(ring.front(), oracle.front());
    ring.pop();
    oracle.pop_front();
  };
  for (int i = 0; i < 16; ++i) push();  // at the initial capacity of 16
  ASSERT_EQ(ring.capacity(), 16u);
  for (int i = 0; i < 10; ++i) pop();   // head at physical index 10
  for (int i = 0; i < 10; ++i) push();  // tail wrapped to physical index 10
  push();  // occupancy 17: grows while head > tail physically
  ASSERT_EQ(ring.capacity(), 32u);
  ASSERT_EQ(ring.size(), oracle.size());
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_EQ(ring[i], oracle[i]) << "post-growth order diverged at " << i;
  }
  while (!oracle.empty()) pop();
  EXPECT_TRUE(ring.empty());
}

// Randomized differential test vs std::deque: biased push/pop phases drive
// repeated growths at arbitrary wrap positions; every pop checks front() and
// every growth checks the full logical order.
TEST(RingBuffer, RandomizedDifferentialVsDeque) {
  Rng rng{0x10edb4ffULL};
  RingBuffer<std::uint64_t> ring;
  std::deque<std::uint64_t> oracle;
  std::uint64_t next = 0;
  std::size_t growths = 0;
  for (int step = 0; step < 200000; ++step) {
    // Alternate push-heavy and pop-heavy phases so occupancy sweeps across
    // capacity boundaries instead of hovering.
    const double push_p = (step / 5000) % 2 == 0 ? 0.7 : 0.3;
    if (oracle.empty() || rng.bernoulli(push_p)) {
      const std::size_t cap = ring.capacity();
      ring.push(next);
      oracle.push_back(next);
      ++next;
      if (ring.capacity() != cap) {
        ++growths;
        ASSERT_EQ(ring.size(), oracle.size());
        for (std::size_t i = 0; i < oracle.size(); ++i) {
          ASSERT_EQ(ring[i], oracle[i])
              << "growth #" << growths << " broke order at " << i;
        }
      }
    } else {
      ASSERT_EQ(ring.front(), oracle.front());
      ring.pop();
      oracle.pop_front();
    }
    ASSERT_EQ(ring.size(), oracle.size());
  }
  EXPECT_GE(growths, 5u) << "workload never exercised growth";
}

}  // namespace
}  // namespace inband
