// Unit tests: the paper's core — Algorithm 1 (FixedTimeout), Algorithm 2
// (EnsembleTimeout + sample cliff), per-flow state table, per-server latency
// tracking, and the α-shift controller, plus the assembled in-band policy on
// synthetic packet streams.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <tuple>
#include <vector>

#include "app/variability.h"
#include "check/reference_models.h"
#include "check/state_digest.h"
#include "core/alpha_shift_controller.h"
#include "core/ensemble_timeout.h"
#include "core/fixed_timeout.h"
#include "core/flow_state_table.h"
#include "core/inband_lb_policy.h"
#include "core/server_latency_tracker.h"
#include "scenario/cluster_rig.h"

namespace inband {
namespace {

FlowKey flow_n(std::uint32_t n) {
  return {{make_ipv4(10, 0, 0, 1), static_cast<std::uint16_t>(1024 + n)},
          {make_ipv4(10, 1, 0, 1), 80},
          IpProto::kTcp};
}

// --- Algorithm 1 ---

TEST(FixedTimeout, FirstPacketProducesNoSample) {
  FixedTimeout ft{us(100)};
  FixedTimeoutState s;
  EXPECT_EQ(ft.on_packet(s, us(500)), kNoTime);
  EXPECT_EQ(s.time_last_batch, us(500));
  EXPECT_EQ(s.time_last_pkt, us(500));
}

TEST(FixedTimeout, GapBelowTimeoutSameBatch) {
  FixedTimeout ft{us(100)};
  FixedTimeoutState s;
  ft.on_packet(s, 0);
  EXPECT_EQ(ft.on_packet(s, us(50)), kNoTime);
  EXPECT_EQ(s.time_last_batch, 0);          // batch unchanged
  EXPECT_EQ(s.time_last_pkt, us(50));       // last pkt advanced
}

TEST(FixedTimeout, GapAboveTimeoutStartsBatchAndSamples) {
  FixedTimeout ft{us(100)};
  FixedTimeoutState s;
  ft.on_packet(s, 0);
  ft.on_packet(s, us(50));
  // Gap of 200us > 100us: sample = now - time_last_batch = 250us.
  EXPECT_EQ(ft.on_packet(s, us(250)), us(250));
  EXPECT_EQ(s.time_last_batch, us(250));
}

TEST(FixedTimeout, GapExactlyTimeoutIsSameBatch) {
  // Pseudocode uses strict '>'.
  FixedTimeout ft{us(100)};
  FixedTimeoutState s;
  ft.on_packet(s, 0);
  EXPECT_EQ(ft.on_packet(s, us(100)), kNoTime);
  EXPECT_EQ(ft.on_packet(s, us(201)), us(201));  // 101us gap > timeout
}

TEST(FixedTimeout, PeriodicBatchesYieldPeriodSamples) {
  // Batches of 4 packets 10us apart, new batch every 300us: samples = 300us.
  FixedTimeout ft{us(64)};
  FixedTimeoutState s;
  std::vector<SimTime> samples;
  for (int batch = 0; batch < 10; ++batch) {
    for (int p = 0; p < 4; ++p) {
      const SimTime t = batch * us(300) + p * us(10);
      const SimTime out = ft.on_packet(s, t);
      if (out != kNoTime) samples.push_back(out);
    }
  }
  ASSERT_EQ(samples.size(), 9u);  // every batch after the first
  for (SimTime v : samples) EXPECT_EQ(v, us(300));
}

TEST(FixedTimeout, TooLowTimeoutOverSegments) {
  // Intra-batch gaps of 50us exceed a 20us timeout: erroneous low samples.
  FixedTimeout ft{us(20)};
  FixedTimeoutState s;
  std::vector<SimTime> samples;
  for (int batch = 0; batch < 5; ++batch) {
    for (int p = 0; p < 4; ++p) {
      const SimTime out =
          ft.on_packet(s, batch * us(1000) + p * us(50));
      if (out != kNoTime) samples.push_back(out);
    }
  }
  // 3 false samples (50us) per batch + 4 true-ish batch samples.
  EXPECT_GT(samples.size(), 12u);
  int low = 0;
  for (SimTime v : samples) {
    if (v == us(50)) ++low;
  }
  EXPECT_GE(low, 12);
}

TEST(FixedTimeout, TooHighTimeoutMergesBatches) {
  // Batch period 300us < timeout 1ms: batches merge, few huge samples.
  FixedTimeout ft{ms(1)};
  FixedTimeoutState s;
  std::vector<SimTime> samples;
  for (int batch = 0; batch < 40; ++batch) {
    for (int p = 0; p < 4; ++p) {
      const SimTime out = ft.on_packet(s, batch * us(300) + p * us(10));
      if (out != kNoTime) samples.push_back(out);
    }
  }
  EXPECT_TRUE(samples.empty());  // gap never exceeds 1ms
}

TEST(FixedTimeout, RejectsNonPositiveDelta) {
  EXPECT_DEATH(FixedTimeout{0}, "timeout");
}

// --- Algorithm 2 ---

TEST(EnsembleConfig, DefaultLadderMatchesPaper) {
  const auto d = EnsembleConfig::default_timeouts();
  ASSERT_EQ(d.size(), 7u);
  EXPECT_EQ(d.front(), us(64));
  EXPECT_EQ(d.back(), us(4096));
  for (std::size_t i = 1; i < d.size(); ++i) EXPECT_EQ(d[i], 2 * d[i - 1]);
}

TEST(EnsembleCliff, PicksLargestDrop) {
  // Counts: 100, 95, 90, 10, 9 -> cliff between index 2 and 3 -> m = 2.
  EXPECT_EQ(EnsembleTimeout::detect_cliff({100, 95, 90, 10, 9}), 2u);
}

TEST(EnsembleCliff, TieBreaksToSmallestIndex) {
  EXPECT_EQ(EnsembleTimeout::detect_cliff({40, 20, 10, 5}), 0u);
}

TEST(EnsembleCliff, HandlesZeros) {
  EXPECT_EQ(EnsembleTimeout::detect_cliff({50, 0, 0}), 0u);
  EXPECT_EQ(EnsembleTimeout::detect_cliff({0, 0, 0}), 0u);
}

// Feeds a periodic batched arrival pattern: `per_batch` packets spaced
// `intra` apart, batches every `period`, starting at `start`.
std::vector<SimTime> batched_arrivals(SimTime start, SimTime period,
                                      int batches, int per_batch,
                                      SimTime intra) {
  std::vector<SimTime> out;
  for (int b = 0; b < batches; ++b) {
    for (int p = 0; p < per_batch; ++p) {
      out.push_back(start + b * period + p * intra);
    }
  }
  return out;
}

TEST(Ensemble, ConvergesToTimeoutBracketingRtt) {
  // True batch period 500us, intra-batch gaps 10us. The ideal timeout lies
  // in (10us, 500us); after one epoch the cliff should pick a δ below 500us
  // and above 10us, and samples should equal the true period.
  EnsembleTimeout est{{}};
  EnsembleState s;
  std::vector<SimTime> samples;
  for (SimTime t : batched_arrivals(0, us(500), 400, 4, us(10))) {
    const SimTime out = est.on_packet(s, t);
    if (out != kNoTime) samples.push_back(out);
  }
  // After convergence (allow 2 epochs = 256 batches worth of warm-up).
  ASSERT_GT(samples.size(), 50u);
  const SimTime delta = est.current_delta(s);
  EXPECT_GT(delta, us(10));
  EXPECT_LT(delta, us(500));
  // Late samples match the true period.
  for (std::size_t i = samples.size() - 20; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i], us(500));
  }
}

TEST(Ensemble, TracksRttStep) {
  // Period steps from 500us to 2500us mid-stream; chosen delta must follow.
  EnsembleTimeout est{{}};
  EnsembleState s;
  for (SimTime t : batched_arrivals(0, us(500), 300, 4, us(10))) {
    est.on_packet(s, t);
  }
  const SimTime delta_before = est.current_delta(s);
  const SimTime t0 = us(500) * 300;
  std::vector<SimTime> late;
  for (SimTime t : batched_arrivals(t0, us(2500), 200, 4, us(10))) {
    const SimTime out = est.on_packet(s, t);
    if (out != kNoTime) late.push_back(out);
  }
  const SimTime delta_after = est.current_delta(s);
  EXPECT_LT(delta_before, us(500));
  EXPECT_GT(delta_after, us(10));
  EXPECT_LT(delta_after, us(2500));
  ASSERT_GT(late.size(), 10u);
  for (std::size_t i = late.size() - 10; i < late.size(); ++i) {
    EXPECT_EQ(late[i], us(2500));
  }
}

TEST(Ensemble, EpochBoundariesResetCounts) {
  EnsembleConfig cfg;
  cfg.epoch = ms(1);
  EnsembleTimeout est{cfg};
  EnsembleState s;
  est.on_packet(s, 0);
  est.on_packet(s, us(200));  // gap 200us: samples for small deltas
  EXPECT_GT(s.samples[0], 0u);
  // Next packet crosses the epoch: counters reset before processing.
  est.on_packet(s, ms(1) + us(1));
  std::uint32_t total = 0;
  for (auto n : s.samples) total += n;
  // Only the current packet's contribution remains.
  EXPECT_LE(total, est.k());
}

TEST(Ensemble, IdleFlowKeepsPreviousChoice) {
  EnsembleConfig cfg;
  cfg.epoch = ms(1);
  cfg.initial_choice = 2;
  EnsembleTimeout est{cfg};
  EnsembleState s;
  est.on_packet(s, 0);
  // Long silence spanning many epochs, then one packet: choice preserved.
  est.on_packet(s, ms(50));
  EXPECT_EQ(est.current_delta(s), EnsembleConfig::default_timeouts()[2]);
}

TEST(Ensemble, StaleCountersDiscardedAfterIdleEpochs) {
  EnsembleConfig cfg;
  cfg.epoch = ms(1);
  cfg.initial_choice = 2;
  EnsembleTimeout est{cfg};
  EnsembleState s;
  // Build a strong cliff at index 0 inside the first epoch: ~100us gaps
  // sample the 64us timeout on every packet and none of the larger ones.
  est.on_packet(s, 0);
  for (int i = 1; i <= 8; ++i) {
    est.on_packet(s, static_cast<SimTime>(i) * us(100));
  }
  EXPECT_GT(s.samples[0], 0u);
  // The flow then sits idle for 3+ epochs. Those counters describe traffic
  // that no longer exists; the resumed flow must keep its previous choice
  // rather than adopt the pre-idle cliff (regression: it used to wake up
  // with the 64us timeout).
  est.on_packet(s, ms(4) + us(100));
  EXPECT_EQ(est.current_delta(s), EnsembleConfig::default_timeouts()[2]);
}

TEST(Ensemble, PreviousEpochCountersStillAdopted) {
  // The stale-counter guard only fires after a full idle epoch: a roll at
  // elapsed < 2*epoch still adopts the cliff the last epoch measured.
  EnsembleConfig cfg;
  cfg.epoch = ms(1);
  cfg.initial_choice = 2;
  EnsembleTimeout est{cfg};
  EnsembleState s;
  est.on_packet(s, 0);
  for (int i = 1; i <= 8; ++i) {
    est.on_packet(s, static_cast<SimTime>(i) * us(100));
  }
  est.on_packet(s, ms(1) + us(500));  // elapsed 1.5 epochs: counters fresh
  EXPECT_EQ(est.current_delta(s), EnsembleConfig::default_timeouts()[0]);
}

TEST(Ensemble, InitialChoiceConfigurable) {
  EnsembleConfig cfg;
  cfg.initial_choice = 0;
  EnsembleTimeout est{cfg};
  EnsembleState s;
  est.on_packet(s, 0);
  EXPECT_EQ(est.current_delta(s), us(64));
}

TEST(Ensemble, CustomLadder) {
  EnsembleConfig cfg;
  cfg.timeouts = {us(10), us(100), us(1000)};
  cfg.initial_choice = 1;
  EnsembleTimeout est{cfg};
  EXPECT_EQ(est.k(), 3u);
  EnsembleState s;
  est.on_packet(s, 0);
  EXPECT_EQ(est.current_delta(s), us(100));
}

TEST(Ensemble, PerFlowMemoryFootprintDocumented) {
  // Guard against the per-flow state silently ballooning: an XDP map entry
  // must stay small. (vector overhead excluded; elements counted.)
  EnsembleTimeout est{{}};
  EnsembleState s;
  est.on_packet(s, 0);
  const std::size_t bytes =
      s.per_timeout.size() * sizeof(FixedTimeoutState) +
      s.samples.size() * sizeof(std::uint32_t) + sizeof(SimTime) +
      sizeof(std::uint32_t) + sizeof(bool);
  EXPECT_LE(bytes, 256u);
}

TEST(Ensemble, K1MatchesFixedTimeoutExactly) {
  // Differential check: a degenerate ladder of one timeout can never move
  // its choice (the cliff always selects index 0), so EnsembleTimeout must
  // reduce to FixedTimeout with the same delta — identical samples on the
  // same packets, including kNoTime on the rest.
  constexpr SimTime kDelta = us(256);
  EnsembleConfig cfg;
  cfg.timeouts = {kDelta};
  cfg.initial_choice = 0;
  const EnsembleTimeout ensemble{cfg};
  ASSERT_EQ(ensemble.k(), 1u);
  const FixedTimeout fixed{kDelta};

  // A bursty synthetic stream: batches of 1–8 packets with ~20us intra-batch
  // gaps, separated by 100us–5ms idle periods, crossing many epochs.
  Rng rng{20220815};
  EnsembleState es;
  FixedTimeoutState fs;
  SimTime now = 0;
  for (int batch = 0; batch < 2000; ++batch) {
    now += static_cast<SimTime>(rng.uniform_u64(
        static_cast<std::uint64_t>(us(100)),
        static_cast<std::uint64_t>(ms(5))));
    const int pkts = static_cast<int>(rng.uniform_u64(1, 8));
    for (int p = 0; p < pkts; ++p) {
      EXPECT_EQ(ensemble.on_packet(es, now), fixed.on_packet(fs, now))
          << "batch " << batch << " pkt " << p << " t " << now;
      now += static_cast<SimTime>(rng.uniform_u64(
          0, static_cast<std::uint64_t>(us(40))));
    }
  }
  EXPECT_EQ(es.chosen, 0u);
  EXPECT_EQ(ensemble.current_delta(es), kDelta);
}

// --- flow state table ---

TEST(FlowStateTable, CreatesAndReuses) {
  FlowStateTable t;
  auto& s1 = t.get_or_create(flow_n(1), 0);
  s1.ensemble.chosen = 5;
  auto& s2 = t.get_or_create(flow_n(1), us(1));
  EXPECT_EQ(s2.ensemble.chosen, 5u);
  EXPECT_EQ(t.size(), 1u);
}

TEST(FlowStateTable, EraseDropsState) {
  FlowStateTable t;
  t.get_or_create(flow_n(1), 0);
  t.erase(flow_n(1));
  EXPECT_EQ(t.size(), 0u);
}

TEST(FlowStateTable, SweepExpiresIdle) {
  FlowStateTableConfig cfg;
  cfg.idle_timeout = ms(1);
  cfg.sweep_interval = ms(1);
  FlowStateTable t{cfg};
  t.get_or_create(flow_n(1), 0);
  t.get_or_create(flow_n(2), ms(5));
  t.maybe_sweep(ms(5));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.expirations(), 1u);
}

TEST(FlowStateTable, CapacityEvictsStalest) {
  FlowStateTableConfig cfg;
  cfg.max_entries = 3;
  FlowStateTable t{cfg};
  for (std::uint32_t i = 0; i < 5; ++i) {
    t.get_or_create(flow_n(i), static_cast<SimTime>(i));
  }
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.evictions(), 2u);
}

TEST(FlowStateTable, RefreshedEntrySurvivesEviction) {
  // The eviction index holds stale records for refreshed entries; they must
  // be skipped, not treated as the victim.
  FlowStateTableConfig cfg;
  cfg.max_entries = 2;
  FlowStateTable t{cfg};
  t.get_or_create(flow_n(1), 10);
  t.get_or_create(flow_n(2), 20);
  t.get_or_create(flow_n(1), 30);  // refresh: record {10, flow 1} goes stale
  t.get_or_create(flow_n(3), 40);  // must evict flow 2, the live minimum
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.evictions(), 1u);
  t.get_or_create(flow_n(1), 50);  // still present: no eviction
  EXPECT_EQ(t.evictions(), 1u);
  t.get_or_create(flow_n(2), 60);  // was evicted: re-creating evicts again
  EXPECT_EQ(t.evictions(), 2u);
}

TEST(FlowStateTable, MatchesLegacyScanOnRandomChurn) {
  // Differential check against the pre-index O(n)-scan implementation:
  // identical churn (creates, refreshes, erases, sweeps) at capacity must
  // leave identical contents, eviction/expiration counters, and digests.
  FlowStateTableConfig cfg;
  cfg.max_entries = 45;
  cfg.idle_timeout = ms(2);
  cfg.sweep_interval = us(500);
  FlowStateTable neu{cfg};
  LegacyFlowStateTable old{cfg};
  Rng rng{20260806};
  SimTime now = 0;
  for (int step = 0; step < 20000; ++step) {
    now += static_cast<SimTime>(
        rng.uniform_u64(0, static_cast<std::uint64_t>(us(1))));
    // The active flow range drifts forward so abandoned flows go idle and
    // expire, exercising sweep alongside capacity eviction.
    const auto n = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(step / 400) + rng.uniform_u64(0, 30));
    const std::uint64_t roll = rng.uniform_u64(0, 99);
    if (roll < 80) {
      neu.maybe_sweep(now);
      old.maybe_sweep(now);
      auto& a = neu.get_or_create(flow_n(n), now);
      auto& b = old.get_or_create(flow_n(n), now);
      a.min_sample = b.min_sample = now % 977;
    } else if (roll < 90 || step < 10000) {
      neu.erase(flow_n(n));
      old.erase(flow_n(n));
    } else {
      // Second half only (so idle flows can expire undisturbed first):
      // one-shot flows push the table over capacity, forcing evict_stalest
      // in both implementations.
      const auto burst = static_cast<std::uint32_t>(100000 + step);
      neu.get_or_create(flow_n(burst), now);
      old.get_or_create(flow_n(burst), now);
    }
    ASSERT_EQ(neu.size(), old.size()) << "step " << step;
    if (step % 500 == 0) {
      StateDigest dn;
      neu.digest_state(dn);
      StateDigest dl;
      old.digest_state(dl);
      ASSERT_EQ(dn.value(), dl.value()) << "step " << step;
    }
  }
  EXPECT_GT(neu.evictions(), 0u);
  EXPECT_GT(neu.expirations(), 0u);
  StateDigest dn;
  neu.digest_state(dn);
  StateDigest dl;
  old.digest_state(dl);
  EXPECT_EQ(dn.value(), dl.value());
}

// --- server latency tracker ---

TEST(Tracker, EwmaScoreFollowsSamples) {
  ServerLatencyTracker tr{2};
  tr.record(0, 0, us(100));
  tr.record(0, us(10), us(100));
  EXPECT_NEAR(tr.score(0, us(10)).value(), static_cast<double>(us(100)), 1.0);
  EXPECT_FALSE(tr.score(1, us(10)).has_value());
}

TEST(Tracker, ScoresListsOnlySampledBackends) {
  ServerLatencyTracker tr{3};
  tr.record(1, 0, us(50));
  const auto scores = tr.scores(us(1));
  ASSERT_EQ(scores.size(), 1u);
  EXPECT_EQ(scores[0].backend, 1u);
  EXPECT_EQ(scores[0].samples, 1u);
  EXPECT_EQ(scores[0].last_sample, 0);
}

TEST(Tracker, WindowedP95Mode) {
  LatencyTrackerConfig cfg;
  cfg.mode = LatencyScoreMode::kWindowedP95;
  cfg.window = ms(10);
  ServerLatencyTracker tr{1, cfg};
  for (int i = 0; i < 95; ++i) tr.record(0, us(100), us(100));
  for (int i = 0; i < 5; ++i) tr.record(0, us(100), ms(2));
  const double p95 = tr.score(0, us(200)).value();
  EXPECT_GT(p95, static_cast<double>(us(90)));
}

TEST(Tracker, WindowedP95AgedOutSamplesMeanNoScore) {
  LatencyTrackerConfig cfg;
  cfg.mode = LatencyScoreMode::kWindowedP95;
  cfg.window = ms(10);
  ServerLatencyTracker tr{2, cfg};
  tr.record(0, 0, us(100));
  tr.record(1, 0, us(200));
  EXPECT_TRUE(tr.score(0, us(1)).has_value());
  // Backend 0's samples age out of the window while count stays > 0. It
  // must report "no opinion" — the old 0.0 made it the cluster's best
  // backend — and scores() must skip it.
  tr.record(1, ms(50), us(200));
  EXPECT_FALSE(tr.score(0, ms(50)).has_value());
  const auto scores = tr.scores(ms(50));
  ASSERT_EQ(scores.size(), 1u);
  EXPECT_EQ(scores[0].backend, 1u);
}

TEST(Controller, AgedOutBackendCannotMasqueradeAsBest) {
  // Regression: pre-fix, a p95 backend whose window had drained scored 0.0,
  // became "best", and let any live backend pass the rel_threshold and
  // min_abs_gap checks — draining traffic over a 20us gap.
  LatencyTrackerConfig tcfg;
  tcfg.mode = LatencyScoreMode::kWindowedP95;
  tcfg.window = ms(10);
  ServerLatencyTracker tr{3, tcfg};
  AlphaShiftConfig cfg;
  cfg.min_samples = 1;
  cfg.cooldown = 0;
  cfg.staleness = sec(1);  // freshness-by-timestamp stays satisfied
  AlphaShiftController ctrl{cfg};
  tr.record(0, 0, us(100));  // ages out of the window by ms(50)
  tr.record(1, ms(50), us(500));
  tr.record(2, ms(50), us(520));
  EXPECT_FALSE(ctrl.evaluate(tr, ms(50)).has_value());
}

TEST(Tracker, EwmaDecaysTowardNewLevel) {
  LatencyTrackerConfig cfg;
  cfg.ewma_tau = us(100);
  ServerLatencyTracker tr{1, cfg};
  tr.record(0, 0, us(100));
  tr.record(0, ms(1), ms(1));  // 10 tau later: old value nearly gone
  EXPECT_GT(tr.score(0, ms(1)).value(), static_cast<double>(us(900)));
}

// --- alpha-shift controller ---

TEST(Controller, NoShiftWithOneBackend) {
  AlphaShiftController c{{}};
  ServerLatencyTracker tr{2};
  for (int i = 0; i < 10; ++i) tr.record(0, us(10) * i, us(100));
  EXPECT_FALSE(c.evaluate(tr, us(100)).has_value());
}

TEST(Controller, ShiftsFromWorstWhenGapLarge) {
  AlphaShiftConfig cfg;
  cfg.min_samples = 1;
  cfg.cooldown = 0;
  AlphaShiftController c{cfg};
  ServerLatencyTracker tr{2};
  tr.record(0, us(1), us(100));
  tr.record(1, us(2), ms(2));
  const auto d = c.evaluate(tr, us(3));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->from, 1u);
  EXPECT_DOUBLE_EQ(d->fraction, 0.10);
  EXPECT_GT(d->worst_score_ns, d->best_score_ns);
}

TEST(Controller, RelativeThresholdSuppressesSmallGaps) {
  AlphaShiftConfig cfg;
  cfg.min_samples = 1;
  cfg.rel_threshold = 2.0;
  AlphaShiftController c{cfg};
  ServerLatencyTracker tr{2};
  tr.record(0, us(1), us(400));
  tr.record(1, us(2), us(600));  // 1.5x, below threshold
  EXPECT_FALSE(c.evaluate(tr, us(3)).has_value());
}

TEST(Controller, AbsoluteGapGuard) {
  AlphaShiftConfig cfg;
  cfg.min_samples = 1;
  cfg.rel_threshold = 1.0;
  cfg.min_abs_gap = us(100);
  AlphaShiftController c{cfg};
  ServerLatencyTracker tr{2};
  tr.record(0, us(1), us(10));
  tr.record(1, us(2), us(50));  // 5x but only 40us apart
  EXPECT_FALSE(c.evaluate(tr, us(3)).has_value());
}

TEST(Controller, CooldownSpacesShifts) {
  AlphaShiftConfig cfg;
  cfg.min_samples = 1;
  cfg.cooldown = ms(1);
  AlphaShiftController c{cfg};
  ServerLatencyTracker tr{2};
  tr.record(0, 0, us(100));
  tr.record(1, 0, ms(5));
  EXPECT_TRUE(c.evaluate(tr, us(10)).has_value());
  tr.record(1, us(20), ms(5));
  EXPECT_FALSE(c.evaluate(tr, us(30)).has_value());  // within cooldown
  tr.record(1, ms(2), ms(5));
  EXPECT_TRUE(c.evaluate(tr, ms(2)).has_value());
  EXPECT_EQ(c.shifts(), 2u);
}

TEST(Controller, StaleScoresIgnored) {
  AlphaShiftConfig cfg;
  cfg.min_samples = 1;
  cfg.staleness = ms(1);
  AlphaShiftController c{cfg};
  ServerLatencyTracker tr{2};
  tr.record(0, 0, us(100));
  tr.record(1, 0, ms(5));
  // 10ms later both scores are stale: no action.
  EXPECT_FALSE(c.evaluate(tr, ms(10)).has_value());
}

TEST(Controller, MinSamplesWarmup) {
  AlphaShiftConfig cfg;
  cfg.min_samples = 5;
  AlphaShiftController c{cfg};
  ServerLatencyTracker tr{2};
  tr.record(0, 0, us(100));
  tr.record(1, 0, ms(5));
  EXPECT_FALSE(c.evaluate(tr, us(1)).has_value());
}

TEST(Controller, PaperFaithfulModeAlwaysShifts) {
  // rel_threshold=1, no abs gap, no cooldown, 1 sample: the raw §3 rule.
  AlphaShiftConfig cfg;
  cfg.rel_threshold = 1.0;
  cfg.min_abs_gap = 0;
  cfg.cooldown = 0;
  cfg.min_samples = 1;
  AlphaShiftController c{cfg};
  ServerLatencyTracker tr{2};
  tr.record(0, 0, us(100));
  tr.record(1, 0, us(101));
  EXPECT_TRUE(c.evaluate(tr, us(1)).has_value());
}

// --- assembled policy on a synthetic packet stream ---

Packet packet_for(const FlowKey& f) {
  Packet p;
  p.flow = f;
  p.payload_len = 100;
  return p;
}

TEST(InbandPolicy, RoutesViaMaglevAndLearns) {
  BackendPool pool{{0, "s0", make_ipv4(10, 2, 0, 1), 1, true},
                   {1, "s1", make_ipv4(10, 2, 0, 2), 1, true}};
  InbandPolicyConfig cfg;
  cfg.maglev_table_size = 251;
  cfg.ensemble.epoch = ms(4);
  cfg.controller.min_samples = 2;
  cfg.controller.cooldown = 0;
  InbandLbPolicy policy{pool, cfg};

  EXPECT_NE(policy.pick(flow_n(1), 0), kNoBackend);

  // Two flows, one per backend. Backend 0 answers every 200us; backend 1
  // every 3ms. Batches of 3 packets, 5us apart.
  SimTime t = 0;
  for (int round = 0; round < 3000; ++round) {
    t += us(200);
    for (int p = 0; p < 3; ++p) {
      policy.on_packet(packet_for(flow_n(1)), 0, t + p * us(5), false);
    }
    if (round % 15 == 0) {
      for (int p = 0; p < 3; ++p) {
        policy.on_packet(packet_for(flow_n(2)), 1, t + p * us(5), false);
      }
    }
  }
  EXPECT_GT(policy.samples_total(), 100u);
  // Backend 1 (slow responder) should have been drained by shifts.
  EXPECT_GT(policy.controller().shifts(), 0u);
  EXPECT_LT(policy.table().slots_owned(1), policy.table().slots_owned(0));
  ASSERT_FALSE(policy.shift_history().empty());
  EXPECT_EQ(policy.shift_history().front().from, 1u);
}

TEST(InbandPolicy, FlowClosedDropsEstimatorState) {
  BackendPool pool{{0, "s0", make_ipv4(10, 2, 0, 1), 1, true},
                   {1, "s1", make_ipv4(10, 2, 0, 2), 1, true}};
  InbandPolicyConfig cfg;
  cfg.maglev_table_size = 251;
  InbandLbPolicy policy{pool, cfg};
  policy.on_packet(packet_for(flow_n(1)), 0, us(1), true);
  EXPECT_EQ(policy.tracked_flows(), 1u);
  policy.on_flow_closed(flow_n(1), 0, us(2));
  EXPECT_EQ(policy.tracked_flows(), 0u);
}

TEST(InbandPolicy, RestoreDriftsBackWhenQuiet) {
  BackendPool pool{{0, "s0", make_ipv4(10, 2, 0, 1), 1, true},
                   {1, "s1", make_ipv4(10, 2, 0, 2), 1, true}};
  InbandPolicyConfig cfg;
  cfg.maglev_table_size = 251;
  cfg.restore_interval = ms(1);
  cfg.restore_step = 0.05;
  InbandLbPolicy policy{pool, cfg};
  // Drain backend 1 manually, then feed quiet traffic (no samples → no
  // controller activity) and check slots drift back.
  policy.table().shift_slots(1, 0.4);
  const auto drained = policy.table().slots_owned(1);
  SimTime t = 0;
  for (int i = 0; i < 50; ++i) {
    t += ms(1);
    policy.on_packet(packet_for(flow_n(1)), 0, t, false);
  }
  EXPECT_GT(policy.table().slots_owned(1), drained);
}

TEST(InbandPolicy, FlowDeltaIntrospection) {
  BackendPool pool{{0, "s0", make_ipv4(10, 2, 0, 1), 1, true}};
  InbandPolicyConfig cfg;
  cfg.maglev_table_size = 251;
  cfg.ensemble.initial_choice = 3;
  InbandLbPolicy policy{pool, cfg};
  policy.on_packet(packet_for(flow_n(1)), 0, us(1), true);
  EXPECT_EQ(policy.flow_delta(flow_n(1), us(2)),
            EnsembleConfig::default_timeouts()[3]);
}


// --- flow-floor normalization (§5(1) extension) ---

TEST(FlowFloor, RecordFloorTracksMinimumAndInflation) {
  FlowState fs;
  EXPECT_EQ(fs.record_floor(us(300)), 0);        // first sample is the floor
  EXPECT_EQ(fs.min_sample, us(300));
  EXPECT_EQ(fs.record_floor(us(450)), us(150));  // inflation above floor
  EXPECT_EQ(fs.record_floor(us(250)), 0);        // new, lower floor
  EXPECT_EQ(fs.min_sample, us(250));
  EXPECT_EQ(fs.record_floor(us(1250)), us(1000));
}

TEST(InbandPolicy, ClientFloorNormalizationCancelsClientDistance) {
  BackendPool pool{{0, "s0", make_ipv4(10, 2, 0, 1), 1, true},
                   {1, "s1", make_ipv4(10, 2, 0, 2), 1, true}};
  InbandPolicyConfig cfg;
  cfg.maglev_table_size = 251;
  cfg.normalize_client_floor = true;
  cfg.ensemble.epoch = ms(4);
  cfg.controller.min_samples = 2;
  cfg.controller.cooldown = 0;
  InbandLbPolicy policy{pool, cfg};

  // Near client (10.0.0.1) on backend 0: batches every 200us. Far client
  // (10.0.0.99) on backend 1: batches every 2.2ms — but that is its
  // *constant* distance, not server slowness. Absolute scoring would drain
  // backend 1; client-floor scoring must not.
  FlowKey far_flow = flow_n(2);
  far_flow.src.addr = make_ipv4(10, 0, 0, 99);
  SimTime t = 0;
  for (int round = 0; round < 2000; ++round) {
    t += us(200);
    Packet p1;
    p1.flow = flow_n(1);
    policy.on_packet(p1, 0, t, false);
    if (round % 11 == 0) {
      Packet p2;
      p2.flow = far_flow;
      policy.on_packet(p2, 1, t + us(3), false);
    }
  }
  EXPECT_GT(policy.samples_total(), 100u);
  EXPECT_EQ(policy.controller().shifts(), 0u);
  EXPECT_EQ(policy.table().slots_owned(0), policy.table().slots_owned(1) + 1);
}

TEST(InbandPolicy, ClientFloorStillDetectsRealInflation) {
  BackendPool pool{{0, "s0", make_ipv4(10, 2, 0, 1), 1, true},
                   {1, "s1", make_ipv4(10, 2, 0, 2), 1, true}};
  InbandPolicyConfig cfg;
  cfg.maglev_table_size = 251;
  cfg.normalize_client_floor = true;
  cfg.ensemble.epoch = ms(4);
  cfg.controller.min_samples = 2;
  cfg.controller.cooldown = 0;
  InbandLbPolicy policy{pool, cfg};

  // Both flows start at 200us batches; after warm-up, backend 1's flow
  // inflates to 1.5ms — a real slowdown relative to its own floor.
  SimTime t1 = 0;
  SimTime t2 = 0;
  for (int round = 0; round < 300; ++round) {
    t1 += us(200);
    t2 = t1 + us(3);
    Packet p1;
    p1.flow = flow_n(1);
    policy.on_packet(p1, 0, t1, false);
    Packet p2;
    p2.flow = flow_n(2);
    policy.on_packet(p2, 1, t2, false);
  }
  // Inflate flow 2's period.
  SimTime t = t1;
  for (int round = 0; round < 300; ++round) {
    t += us(200);
    Packet p1;
    p1.flow = flow_n(1);
    policy.on_packet(p1, 0, t, false);
    if (round % 8 == 0) {
      Packet p2;
      p2.flow = flow_n(2);
      policy.on_packet(p2, 1, t + us(3), false);
    }
  }
  EXPECT_GT(policy.controller().shifts(), 0u);
  ASSERT_FALSE(policy.shift_history().empty());
  EXPECT_EQ(policy.shift_history().front().from, 1u);
}

// --- parameterized property sweeps ---

// Property: a FixedTimeout sample is only produced on a gap strictly above
// delta, and the sample always spans at least that gap.
class FixedTimeoutProperty : public testing::TestWithParam<SimTime> {};

TEST_P(FixedTimeoutProperty, SamplesImplyGapAboveDelta) {
  const SimTime delta = GetParam();
  FixedTimeout ft{delta};
  FixedTimeoutState s;
  Rng rng{delta == 0 ? 1 : static_cast<std::uint64_t>(delta)};
  SimTime t = 0;
  SimTime last_t = kNoTime;
  for (int i = 0; i < 20000; ++i) {
    t += static_cast<SimTime>(rng.exponential(static_cast<double>(us(80))));
    const SimTime out = ft.on_packet(s, t);
    if (out != kNoTime) {
      ASSERT_NE(last_t, kNoTime);
      EXPECT_GT(t - last_t, delta);   // the triggering gap exceeds delta
      EXPECT_GE(out, t - last_t);     // sample covers at least that gap
    }
    last_t = t;
  }
}

INSTANTIATE_TEST_SUITE_P(Deltas, FixedTimeoutProperty,
                         testing::Values(us(16), us(64), us(256), us(1024),
                                         ms(4)));

// Property: whatever the arrival process, EnsembleTimeout's chosen delta is
// always a ladder member, counters never exceed packets per epoch, and the
// emitted sample equals what a standalone FixedTimeout at the chosen delta
// would have emitted at that packet.
class EnsemblePropertyTest
    : public testing::TestWithParam<std::tuple<SimTime, double>> {};

TEST_P(EnsemblePropertyTest, ChosenDeltaAlwaysInLadder) {
  const auto [mean_gap, burstiness] = GetParam();
  EnsembleConfig cfg;
  cfg.epoch = ms(8);
  EnsembleTimeout est{cfg};
  EnsembleState s;
  Rng rng{42};
  SimTime t = 0;
  for (int i = 0; i < 30000; ++i) {
    // Bursty arrivals: with prob `burstiness`, tiny gap; else mean_gap.
    const double gap =
        rng.bernoulli(burstiness)
            ? rng.exponential(static_cast<double>(us(3)))
            : rng.exponential(static_cast<double>(mean_gap));
    t += std::max<SimTime>(1, static_cast<SimTime>(gap));
    est.on_packet(s, t);
    const SimTime delta = est.current_delta(s);
    bool in_ladder = false;
    for (SimTime d : cfg.timeouts) in_ladder = in_ladder || d == delta;
    ASSERT_TRUE(in_ladder) << "delta=" << delta;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ArrivalShapes, EnsemblePropertyTest,
    testing::Combine(testing::Values(us(50), us(200), us(800), ms(3)),
                     testing::Values(0.0, 0.5, 0.9)));

// Property: controller never proposes shifting from a backend that is not
// the current worst, and honours its cooldown for every config combination.
class ControllerProperty
    : public testing::TestWithParam<std::tuple<double, SimTime>> {};

TEST_P(ControllerProperty, ShiftAlwaysFromWorstAndCooldownHeld) {
  const auto [alpha, cooldown] = GetParam();
  AlphaShiftConfig cfg;
  cfg.alpha = alpha;
  cfg.cooldown = cooldown;
  cfg.min_samples = 1;
  cfg.rel_threshold = 1.2;
  cfg.min_abs_gap = us(10);
  AlphaShiftController ctrl{cfg};
  ServerLatencyTracker tracker{4};
  Rng rng{7};
  SimTime now = 0;
  SimTime last_shift = kNoTime;
  for (int i = 0; i < 5000; ++i) {
    now += us(20);
    const auto backend = static_cast<BackendId>(rng.uniform_u64(0, 3));
    const auto lat = static_cast<SimTime>(
        rng.lognormal_median(static_cast<double>(us(200)), 0.8));
    tracker.record(backend, now, lat);
    if (auto d = ctrl.evaluate(tracker, now)) {
      EXPECT_DOUBLE_EQ(d->fraction, alpha);
      EXPECT_GE(d->worst_score_ns, d->best_score_ns);
      // The decision's source is the max over fresh scores.
      double max_score = 0;
      for (const auto& sc : tracker.scores(now)) {
        max_score = std::max(max_score, sc.score_ns);
      }
      EXPECT_DOUBLE_EQ(d->worst_score_ns, max_score);
      if (last_shift != kNoTime) {
        EXPECT_GE(now - last_shift, cooldown);
      }
      last_shift = now;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ControllerProperty,
    testing::Combine(testing::Values(0.05, 0.1, 0.25),
                     testing::Values(SimTime{0}, us(100), ms(1))));


// --- SYN→handshake-ACK RTT (the §3 "simple instantiation") ---

Packet syn_for(const FlowKey& f) {
  Packet p;
  p.flow = f;
  p.flags = tcpflag::kSyn;
  return p;
}

Packet ack_for(const FlowKey& f) {
  Packet p;
  p.flow = f;
  p.flags = tcpflag::kAck;
  return p;
}

TEST(HandshakeRtt, MeasuresSynToAckGap) {
  HandshakeRttEstimator est;
  EXPECT_EQ(est.on_packet(syn_for(flow_n(1)), us(100)), kNoTime);
  EXPECT_EQ(est.on_packet(ack_for(flow_n(1)), us(350)), us(250));
  EXPECT_EQ(est.samples_emitted(), 1u);
  EXPECT_EQ(est.pending(), 0u);
}

TEST(HandshakeRtt, OnlyFirstAckCounts) {
  HandshakeRttEstimator est;
  est.on_packet(syn_for(flow_n(1)), 0);
  EXPECT_NE(est.on_packet(ack_for(flow_n(1)), us(200)), kNoTime);
  // Later ACKs of the same flow are data-path traffic, not handshakes.
  EXPECT_EQ(est.on_packet(ack_for(flow_n(1)), us(400)), kNoTime);
}

TEST(HandshakeRtt, UnknownAckIgnored) {
  HandshakeRttEstimator est;
  EXPECT_EQ(est.on_packet(ack_for(flow_n(9)), us(1)), kNoTime);
}

TEST(HandshakeRtt, SynRetransmissionAbandonsSample) {
  HandshakeRttEstimator est;
  est.on_packet(syn_for(flow_n(1)), 0);
  est.on_packet(syn_for(flow_n(1)), ms(50));  // retransmitted SYN
  EXPECT_EQ(est.retransmitted_syns(), 1u);
  // The eventual ACK must not produce a (RTO-inflated) sample.
  EXPECT_EQ(est.on_packet(ack_for(flow_n(1)), ms(51)), kNoTime);
}

TEST(HandshakeRtt, RstClearsPending) {
  HandshakeRttEstimator est;
  est.on_packet(syn_for(flow_n(1)), 0);
  Packet rst;
  rst.flow = flow_n(1);
  rst.flags = tcpflag::kRst;
  est.on_packet(rst, us(10));
  EXPECT_EQ(est.pending(), 0u);
  EXPECT_EQ(est.on_packet(ack_for(flow_n(1)), us(20)), kNoTime);
}

TEST(HandshakeRtt, StaleHandshakesSweptOut) {
  HandshakeRttConfig cfg;
  cfg.pending_timeout = ms(10);
  HandshakeRttEstimator est{cfg};
  est.on_packet(syn_for(flow_n(1)), 0);
  EXPECT_EQ(est.pending(), 1u);
  // A much later packet from another flow triggers the sweep.
  est.on_packet(syn_for(flow_n(2)), ms(30));
  EXPECT_EQ(est.pending(), 1u);  // only the fresh one remains
}

TEST(HandshakeRtt, CapacityBounded) {
  HandshakeRttConfig cfg;
  cfg.max_pending = 8;
  HandshakeRttEstimator est{cfg};
  for (std::uint32_t i = 0; i < 50; ++i) {
    est.on_packet(syn_for(flow_n(i)), static_cast<SimTime>(i));
  }
  EXPECT_LE(est.pending(), 8u);
}

TEST(InbandPolicy, HandshakeBootstrapFeedsTracker) {
  BackendPool pool{{0, "s0", make_ipv4(10, 2, 0, 1), 1, true},
                   {1, "s1", make_ipv4(10, 2, 0, 2), 1, true}};
  InbandPolicyConfig cfg;
  cfg.maglev_table_size = 251;
  cfg.use_handshake_bootstrap = true;
  InbandLbPolicy policy{pool, cfg};
  policy.on_packet(syn_for(flow_n(1)), 0, us(10), true);
  policy.on_packet(ack_for(flow_n(1)), 0, us(310), false);
  EXPECT_EQ(policy.handshake_samples(), 1u);
  // Two samples land: the handshake gap AND the ensemble's batch gap (the
  // ACK opens a new batch 300us after the SYN) — both measure the same loop.
  EXPECT_EQ(policy.tracker().samples(0), 2u);
  EXPECT_NEAR(policy.tracker().score(0, us(310)).value(),
              static_cast<double>(us(300)), 1.0);
}


// --- controller extensions: warmup, global guard, confirmation ---

TEST(Controller, WarmupSuppressesEarlyShifts) {
  AlphaShiftConfig cfg;
  cfg.min_samples = 1;
  cfg.warmup = ms(10);
  AlphaShiftController c{cfg};
  ServerLatencyTracker tr{2};
  tr.record(0, ms(5), us(100));
  tr.record(1, ms(5), ms(5));
  EXPECT_FALSE(c.evaluate(tr, ms(5)).has_value());  // inside warmup
  tr.record(0, ms(11), us(100));
  tr.record(1, ms(11), ms(5));
  EXPECT_TRUE(c.evaluate(tr, ms(11)).has_value());  // after warmup
}

TEST(Controller, GlobalGuardHoldsWhenBestInflates) {
  AlphaShiftConfig cfg;
  cfg.min_samples = 1;
  cfg.cooldown = 0;
  cfg.global_guard = 3.0;
  cfg.guard_tau = ms(50);
  AlphaShiftController c{cfg};
  ServerLatencyTracker tr{2};
  // Establish a baseline: both servers ~100us, no shift (gap too small).
  for (int i = 1; i <= 20; ++i) {
    tr.record(0, i * us(100), us(100));
    tr.record(1, i * us(100), us(110));
    c.evaluate(tr, i * us(100));
  }
  // Abrupt shared fault: BOTH jump, but server 1's sample arrives first.
  tr.record(1, ms(3), ms(2));
  // Gap is huge (2ms vs 100us) but best==100us is NOT inflated -> guard
  // passes; this decision is legitimate from the controller's view...
  EXPECT_TRUE(c.evaluate(tr, ms(3)).has_value());
  // ...now server 0's samples catch up: best itself is inflated 10x over
  // its trailing baseline -> the guard holds even though the gap persists.
  tr.record(0, ms(4), ms(1));
  tr.record(1, ms(4), ms(2));
  EXPECT_FALSE(c.evaluate(tr, ms(4)).has_value());
  EXPECT_GT(c.guard_holds(), 0u);
}

TEST(Controller, ConfirmationDelayRequiresPersistentCandidate) {
  AlphaShiftConfig cfg;
  cfg.min_samples = 1;
  cfg.cooldown = 0;
  cfg.confirm = ms(1);
  AlphaShiftController c{cfg};
  ServerLatencyTracker tr{2};
  tr.record(0, us(10), us(100));
  tr.record(1, us(10), ms(5));
  // First sighting arms the candidate but does not execute.
  EXPECT_FALSE(c.evaluate(tr, us(10)).has_value());
  // Still pending inside the window.
  tr.record(1, us(500), ms(5));
  EXPECT_FALSE(c.evaluate(tr, us(500)).has_value());
  // Past the confirmation window with the same candidate: execute.
  tr.record(1, ms(2), ms(5));
  EXPECT_TRUE(c.evaluate(tr, ms(2)).has_value());
}

TEST(Controller, ConfirmationResetsWhenGapEvaporates) {
  AlphaShiftConfig cfg;
  cfg.min_samples = 1;
  cfg.cooldown = 0;
  cfg.confirm = ms(1);
  cfg.staleness = sec(1);
  AlphaShiftController c{cfg};
  ServerLatencyTracker tr{2};
  tr.record(0, us(10), us(100));
  tr.record(1, us(10), ms(5));
  EXPECT_FALSE(c.evaluate(tr, us(10)).has_value());  // candidate armed
  // The gap disappears (transition race resolved): candidate withdrawn.
  // EWMA with tau 2ms: a 100us sample 10ms later dominates.
  tr.record(1, ms(12), us(100));
  EXPECT_FALSE(c.evaluate(tr, ms(12)).has_value());
  // Gap reappears: the confirmation clock must restart.
  tr.record(1, ms(13), ms(50));
  EXPECT_FALSE(c.evaluate(tr, ms(13)).has_value());
  tr.record(1, ms(13) + us(100), ms(50));
  EXPECT_FALSE(c.evaluate(tr, ms(13) + us(100)).has_value());
  tr.record(1, ms(15), ms(50));
  EXPECT_TRUE(c.evaluate(tr, ms(15)).has_value());
}

TEST(Controller, ConfirmationSwitchesCandidates) {
  AlphaShiftConfig cfg;
  cfg.min_samples = 1;
  cfg.cooldown = 0;
  cfg.confirm = ms(1);
  cfg.staleness = sec(1);
  AlphaShiftController c{cfg};
  ServerLatencyTracker tr{3};
  tr.record(0, us(10), us(100));
  tr.record(1, us(10), ms(5));
  tr.record(2, us(10), us(120));
  EXPECT_FALSE(c.evaluate(tr, us(10)).has_value());  // candidate: 1
  // Backend 2 becomes the new worst: candidate switches, clock restarts.
  tr.record(2, us(200), ms(20));
  EXPECT_FALSE(c.evaluate(tr, us(200)).has_value());
  tr.record(2, us(900), ms(20));
  EXPECT_FALSE(c.evaluate(tr, us(900)).has_value());  // 700us < confirm
  tr.record(2, ms(2), ms(20));
  const auto d = c.evaluate(tr, ms(2));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->from, 2u);
}


// --- table-update mechanisms ---

TEST(InbandPolicy, WeightRebuildModeDrainsVictim) {
  BackendPool pool{{0, "s0", make_ipv4(10, 2, 0, 1), 1, true},
                   {1, "s1", make_ipv4(10, 2, 0, 2), 1, true},
                   {2, "s2", make_ipv4(10, 2, 0, 3), 1, true}};
  InbandPolicyConfig cfg;
  cfg.maglev_table_size = 1021;
  cfg.table_update = TableUpdateMode::kWeightRebuild;
  cfg.ensemble.epoch = ms(4);
  cfg.controller.min_samples = 2;
  cfg.controller.cooldown = 0;
  InbandLbPolicy policy{pool, cfg};

  SimTime t = 0;
  for (int round = 0; round < 3000; ++round) {
    t += us(200);
    Packet fast;
    fast.flow = flow_n(1);
    policy.on_packet(fast, 0, t, false);
    Packet fast2;
    fast2.flow = flow_n(3);
    policy.on_packet(fast2, 2, t + us(1), false);
    if (round % 15 == 0) {
      Packet slow;
      slow.flow = flow_n(2);
      policy.on_packet(slow, 1, t + us(3), false);
    }
  }
  EXPECT_GT(policy.controller().shifts(), 0u);
  EXPECT_GT(policy.slots_disturbed(), 0u);
  // Victim drained; the full table is still covered by the healthy two.
  EXPECT_LT(policy.table().slots_owned(1), 1021u / 10);
  EXPECT_EQ(policy.table().slots_owned(0) + policy.table().slots_owned(1) +
                policy.table().slots_owned(2),
            1021u);
}

// --- dependency model units ---

TEST(SharedDependency, DelayStepsAtInjection) {
  SharedDependency dep{us(20)};
  EXPECT_EQ(dep.delay_at(0), us(20));
  dep.inject(ms(5), ms(1));
  EXPECT_EQ(dep.delay_at(ms(4)), us(20));
  EXPECT_EQ(dep.delay_at(ms(5)), us(20) + ms(1));
  EXPECT_EQ(dep.delay_at(ms(50)), us(20) + ms(1));
}

TEST(DependencyInjector, CallFractionGatesTheDelay) {
  SharedDependency dep{us(100)};
  DependencyInjector inj{dep, 0.25};
  inj.seed_stream(17);
  int hits = 0;
  constexpr int kN = 40'000;
  for (int i = 0; i < kN; ++i) {
    const SimTime d = inj.extra_service_time(0, us(10));
    if (d > 0) {
      EXPECT_EQ(d, us(100));
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.25, 0.02);
}

TEST(DependencyInjector, SharedInstanceCouplesServers) {
  SharedDependency dep{0};
  DependencyInjector a{dep, 1.0};
  DependencyInjector b{dep, 1.0};
  EXPECT_EQ(a.extra_service_time(0, us(10)), 0);
  EXPECT_EQ(b.extra_service_time(0, us(10)), 0);
  dep.inject(ms(1), ms(2));
  EXPECT_EQ(a.extra_service_time(ms(1), us(10)), ms(2));
  EXPECT_EQ(b.extra_service_time(ms(1), us(10)), ms(2));
}

// --- α-shift refactor differential suite (WeightController extraction) ---

// Drives the refactored AlphaShiftController and the pre-refactor
// LegacyAlphaShiftController (check/reference_models.h) with identical
// synthetic score streams and demands the identical decision sequence —
// presence, victim, fraction, and both scores, bit for bit.
void drive_alpha_differential(const AlphaShiftConfig& cfg) {
  AlphaShiftController fresh{cfg};
  LegacyAlphaShiftController legacy{cfg};
  ServerLatencyTracker tr_fresh{4};
  ServerLatencyTracker tr_legacy{4};

  std::uint64_t x = 0x9E3779B97F4A7C15ULL;  // xorshift64: deterministic
  const auto next = [&x] {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };

  SimTime now = 0;
  std::size_t decisions = 0;
  for (int step = 0; step < 4000; ++step) {
    now += static_cast<SimTime>(next() % us(200));
    const auto backend = static_cast<BackendId>(next() % 4);
    // Backend 3 runs slow in bursts; everyone else jitters around 100us.
    // Occasionally *every* backend inflates (exercises the global guard).
    const bool global_burst = (step / 500) % 4 == 3;
    SimTime sample = us(80) + static_cast<SimTime>(next() % us(40));
    if (backend == 3 && (step / 300) % 2 == 1) sample += ms(1);
    if (global_burst) sample += ms(2);
    tr_fresh.record(backend, now, sample);
    tr_legacy.record(backend, now, sample);

    const auto d_fresh = fresh.evaluate(tr_fresh, now);
    const auto d_legacy = legacy.evaluate(tr_legacy, now);
    ASSERT_EQ(d_fresh.has_value(), d_legacy.has_value()) << "step " << step;
    if (d_fresh.has_value()) {
      ++decisions;
      EXPECT_EQ(d_fresh->from, d_legacy->from) << "step " << step;
      EXPECT_EQ(d_fresh->fraction, d_legacy->fraction) << "step " << step;
      EXPECT_EQ(d_fresh->worst_score_ns, d_legacy->worst_score_ns)
          << "step " << step;
      EXPECT_EQ(d_fresh->best_score_ns, d_legacy->best_score_ns)
          << "step " << step;
    }
  }
  EXPECT_GT(decisions, 0u);  // the stream must actually exercise the law
  EXPECT_EQ(fresh.shifts(), legacy.shifts());
  EXPECT_EQ(fresh.last_shift_time(), legacy.last_shift_time());
  EXPECT_EQ(fresh.guard_holds(), legacy.guard_holds());
}

TEST(AlphaShiftDifferential, MatchesLegacyOnDefaultConfig) {
  AlphaShiftConfig cfg;
  cfg.min_samples = 2;
  cfg.cooldown = us(300);
  drive_alpha_differential(cfg);
}

TEST(AlphaShiftDifferential, MatchesLegacyWithGuardAndConfirm) {
  AlphaShiftConfig cfg;
  cfg.min_samples = 2;
  cfg.cooldown = us(300);
  cfg.global_guard = 1.5;
  cfg.guard_tau = ms(5);
  cfg.confirm = us(200);
  drive_alpha_differential(cfg);
}

TEST(AlphaShiftDifferential, ControlStepMirrorsEvaluate) {
  // The interface wrapper must be a pure re-expression of evaluate(): same
  // trigger times, same victim/scores, shift expression (no weight vector).
  AlphaShiftConfig cfg;
  cfg.min_samples = 1;
  cfg.cooldown = us(100);
  AlphaShiftController via_evaluate{cfg};
  AlphaShiftController via_interface{cfg};
  ServerLatencyTracker tr_a{3};
  ServerLatencyTracker tr_b{3};
  const std::vector<double> shares{0.4, 0.3, 0.3};
  for (int step = 0; step < 500; ++step) {
    const SimTime now = us(50) * (step + 1);
    const auto backend = static_cast<BackendId>(step % 3);
    const SimTime sample = backend == 2 ? ms(1) : us(100);
    tr_a.record(backend, now, sample);
    tr_b.record(backend, now, sample);
    const auto d_eval = via_evaluate.evaluate(tr_a, now);
    const auto d_step = via_interface.control_step(tr_b, shares, now);
    ASSERT_EQ(d_eval.has_value(), d_step.has_value()) << "step " << step;
    if (d_step.has_value()) {
      EXPECT_FALSE(d_step->is_weight_vector());
      EXPECT_EQ(d_step->from, d_eval->from);
      EXPECT_EQ(d_step->fraction, d_eval->fraction);
      EXPECT_EQ(d_step->worst_score_ns, d_eval->worst_score_ns);
      EXPECT_EQ(d_step->best_score_ns, d_eval->best_score_ns);
    }
  }
  EXPECT_GT(via_interface.shifts(), 0u);
  EXPECT_EQ(via_interface.shifts(), via_evaluate.shifts());
}

TEST(AlphaShiftDifferential, QuickRigDigestPinnedAcrossRefactor) {
  // The perf_dataplane --quick rig (seed 2022, 400ms, 2 servers, 2 client
  // hosts) produced this digest before the WeightController extraction; the
  // refactored default α-shift path must reproduce it bit for bit. Keep in
  // sync with .perf_baseline/dataplane_quick.json (rig_digest).
  ClusterRigConfig cfg;
  cfg.mode = LbMode::kInband;
  cfg.num_servers = 2;
  cfg.num_client_hosts = 2;
  cfg.duration = ms(400);
  cfg.inject_time = cfg.duration / 2;
  cfg.seed = 2022;
  cfg.client.connections = 4;
  cfg.client.pipeline = 4;
  cfg.server.workers = 8;
  cfg.share_sample_interval = ms(10);
  cfg.audit_interval = 0;
  ClusterRig rig{cfg};
  rig.run();
  EXPECT_EQ(rig.state_digest(), 0x082ea340888d2502ULL);
}

}  // namespace
}  // namespace inband
