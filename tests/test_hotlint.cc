// Tests for hotlint, the call-graph-aware hot-path and shard-safety
// analyzer (tools/detlint).
//
// Two layers, mirroring test_detlint.cc:
//  - engine tests call analyze_hot() directly and pin reachability, chain
//    construction, waiver/cold-region mechanics, and each hazard rule down
//    to the finding line;
//  - binary tests shell the built `hotlint` executable over the fixture
//    corpus (tools/detlint/fixtures/hotlint) and assert the end-to-end
//    contract: the pre-PR-4 std::function event queue replica is flagged,
//    clean and fully-waived fixtures exit 0, waiver hygiene fires, and the
//    --callgraph dumps are well-formed.

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "hotlint.h"

namespace {

using detlint::Finding;
using detlint::HotInput;
using detlint::HotReport;
using detlint::analyze_hot;

std::vector<Finding> FindingsFor(const HotReport& report,
                                 const std::string& rule) {
  std::vector<Finding> out;
  for (const Finding& f : report.findings) {
    if (f.rule == rule) out.push_back(f);
  }
  return out;
}

HotReport Analyze(const char* src) {
  return analyze_hot({HotInput{"x.cc", src}});
}

// ---------------------------------------------------------------------------
// Engine: reachability and chains.
// ---------------------------------------------------------------------------

TEST(HotlintEngine, AllocInHotRootFlaggedWithChain) {
  HotReport r = Analyze(R"(
INBAND_HOT int* grab() {
  return new int{7};
}
)");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "hot-alloc");
  EXPECT_EQ(r.findings[0].line, 3);
  EXPECT_FALSE(r.findings[0].waived);
  ASSERT_EQ(r.findings[0].chain.size(), 1u);
  EXPECT_NE(r.findings[0].chain[0].find("grab"), std::string::npos);
}

TEST(HotlintEngine, UnreachableHazardIsSilent) {
  // No hot root anywhere: the hazard sits in dead territory.
  HotReport r = Analyze(R"(
int* grab() { return new int{7}; }
)");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.roots, 0u);
}

TEST(HotlintEngine, HazardReachedTransitivelyCarriesFullChain) {
  HotReport r = Analyze(R"(
void helper() { auto* p = new int{1}; (void)p; }
void middle() { helper(); }
INBAND_HOT void root() { middle(); }
)");
  ASSERT_EQ(r.findings.size(), 1u);
  const Finding& f = r.findings[0];
  EXPECT_EQ(f.rule, "hot-alloc");
  ASSERT_EQ(f.chain.size(), 3u);
  EXPECT_NE(f.chain[0].find("root"), std::string::npos);
  EXPECT_NE(f.chain[1].find("middle"), std::string::npos);
  EXPECT_NE(f.chain[2].find("helper"), std::string::npos);
}

TEST(HotlintEngine, CallGraphSpansFiles) {
  HotReport r = analyze_hot({
      HotInput{"a.cc", R"(
void helper();
INBAND_HOT void root() { helper(); }
)"},
      HotInput{"b.cc", R"(
void helper() { auto* p = malloc(8); (void)p; }
)"},
  });
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].file, "b.cc");
  EXPECT_EQ(r.findings[0].rule, "hot-alloc");
  ASSERT_EQ(r.findings[0].chain.size(), 2u);
  EXPECT_NE(r.findings[0].chain[0].find("a.cc"), std::string::npos);
}

TEST(HotlintEngine, MemberCallFansOutToSameNamedMethods) {
  // Name-only member resolution: sink.add() must reach both class's add().
  HotReport r = Analyze(R"(
struct A { void add(int v) { auto* p = new int{v}; (void)p; } };
struct B { void add(int) {} };
struct Pipeline {
  A sink;
  INBAND_HOT void run(int v) { sink.add(v); }
};
)");
  ASSERT_EQ(FindingsFor(r, "hot-alloc").size(), 1u);
  EXPECT_EQ(FindingsFor(r, "hot-alloc")[0].line, 2);
}

// ---------------------------------------------------------------------------
// Engine: operator-overload and template call sites.
// ---------------------------------------------------------------------------

TEST(HotlintEngine, ExplicitMemberOperatorCallResolves) {
  HotReport r = Analyze(R"(
struct Vec {
  Vec operator+(const Vec&) { auto* p = new int{1}; (void)p; return *this; }
};
INBAND_HOT void mix(Vec a, Vec b) { a.operator+(b); }
)");
  auto hits = FindingsFor(r, "hot-alloc");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 3);
  ASSERT_EQ(hits[0].chain.size(), 2u);
  EXPECT_NE(hits[0].chain[1].find("operator+"), std::string::npos);
}

TEST(HotlintEngine, FreeOperatorCallResolves) {
  HotReport r = Analyze(R"(
struct Sink { long n_ = 0; };
Sink& operator<<(Sink& s, long v) {
  auto* p = new long{v};
  s.n_ += *p;
  delete p;
  return s;
}
INBAND_HOT void log_raw(Sink& s, long v) { operator<<(s, v); }
)");
  EXPECT_EQ(FindingsFor(r, "hot-alloc").size(), 2u);
}

TEST(HotlintEngine, ExplicitCallOperatorResolves) {
  HotReport r = Analyze(R"(
struct Fn {
  void operator()(int v) { auto* p = new int{v}; (void)p; }
};
INBAND_HOT void drive(Fn f) { f.operator()(3); }
)");
  ASSERT_EQ(FindingsFor(r, "hot-alloc").size(), 1u);
  EXPECT_NE(FindingsFor(r, "hot-alloc")[0].chain[1].find("operator()"),
            std::string::npos);
}

TEST(HotlintEngine, HotMarkOnCallOperatorRootsIt) {
  HotReport r = Analyze(R"(
struct Picker {
  INBAND_HOT int operator()(int k) { return pick(k); }
  int pick(int k) { auto* p = new int{k}; (void)p; return k; }
};
)");
  EXPECT_EQ(r.roots, 1u);
  ASSERT_EQ(FindingsFor(r, "hot-alloc").size(), 1u);
  EXPECT_NE(FindingsFor(r, "hot-alloc")[0].chain[0].find("operator()"),
            std::string::npos);
}

TEST(HotlintEngine, TemplateMemberAndQualifiedDispatchResolve) {
  HotReport r = Analyze(R"(
struct Table {
  int lookup(int k) { auto* p = new int{k}; (void)p; return k; }
  static int probe(int k) { auto* q = new int{k}; (void)q; return k; }
};
INBAND_HOT int seek(Table& t, int k) {
  return t.lookup<4>(k) + Table::probe<int>(k);
}
)");
  EXPECT_EQ(FindingsFor(r, "hot-alloc").size(), 2u);
}

TEST(HotlintEngine, BareTemplateCallIsDocumentedBlindSpot) {
  // `f<int>(x)` is ambiguous with comparison chains at the token level, so
  // the bare form deliberately contributes no edge (callgraph.h).
  HotReport r = Analyze(R"(
int stash(int k) { auto* p = new int{k}; (void)p; return k; }
INBAND_HOT int no_edge(int k) { return stash<int>(k); }
)");
  EXPECT_TRUE(r.findings.empty());
}

TEST(HotlintEngine, NestedColdRegionsInnermostWins) {
  HotReport r = Analyze(R"(
struct Cache {
  int limit_ = 0;
  INBAND_HOT int get(int k) {
    if (k < limit_) return k;
    INBAND_COLD_OK("outer: rebuild path");
    {
      INBAND_COLD_OK("inner: diagnostics only");
      auto* snap = new int{k};
      (void)snap;
    }
    auto* table = new int[8];
    delete[] table;
    return 0;
  }
};
)");
  EXPECT_EQ(r.unwaived(), 0u);
  auto hits = FindingsFor(r, "hot-alloc");
  ASSERT_EQ(hits.size(), 3u);
  for (const Finding& f : hits) {
    EXPECT_TRUE(f.waived);
    if (f.line == 9) {
      EXPECT_NE(f.waiver_reason.find("inner"), std::string::npos);
    } else {
      EXPECT_NE(f.waiver_reason.find("outer"), std::string::npos);
    }
  }
}

// ---------------------------------------------------------------------------
// Engine: individual hazard rules.
// ---------------------------------------------------------------------------

TEST(HotlintEngine, StdFunctionConstructionFlagged) {
  HotReport r = Analyze(R"(
#include <functional>
INBAND_HOT void arm(void (*raw)()) {
  std::function<void()> fn = raw;
  fn();
}
)");
  ASSERT_EQ(FindingsFor(r, "hot-stdfunc").size(), 1u);
  EXPECT_EQ(FindingsFor(r, "hot-stdfunc")[0].line, 4);
}

TEST(HotlintEngine, MapBracketCountsAsGrowth) {
  HotReport r = Analyze(R"(
#include <unordered_map>
struct S {
  std::unordered_map<int, int> seen_;
  INBAND_HOT void mark(int k) { seen_[k] = 1; }
};
)");
  ASSERT_EQ(FindingsFor(r, "hot-growth").size(), 1u);
  EXPECT_NE(FindingsFor(r, "hot-growth")[0].message.find("seen_"),
            std::string::npos);
}

TEST(HotlintEngine, ThrowStringIoAndLocksFlagged) {
  HotReport r = Analyze(R"(
#include <mutex>
#include <string>
INBAND_HOT void worst(int v) {
  std::lock_guard<std::mutex> g{mu_};
  std::string s = std::to_string(v);
  printf("%s", s.c_str());
  if (v < 0) throw v;
}
)");
  EXPECT_FALSE(FindingsFor(r, "hot-block").empty());
  EXPECT_FALSE(FindingsFor(r, "hot-string").empty());
  EXPECT_FALSE(FindingsFor(r, "hot-io").empty());
  EXPECT_EQ(FindingsFor(r, "hot-throw").size(), 1u);
}

TEST(HotlintEngine, PlacementNewIsExemptExplicitOperatorNewIsNot) {
  HotReport r = Analyze(R"(
INBAND_HOT void build(unsigned char* buf) {
  auto* a = new (buf) int{1};
  auto* b = ::operator new(16);
  (void)a;
  (void)b;
}
)");
  auto hits = FindingsFor(r, "hot-alloc");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 4);
}

TEST(HotlintEngine, GuardedLogLinesAreExempt) {
  HotReport r = Analyze(R"(
INBAND_HOT void note(int v) {
  LOG_DEBUG() << "value " << std::to_string(v);
}
)");
  EXPECT_TRUE(r.findings.empty());
}

TEST(HotlintEngine, ShardGlobalAndMutableStaticFlagged) {
  HotReport r = Analyze(R"(
long g_hits = 0;
INBAND_HOT void touch() {
  static int warmup = 0;
  ++warmup;
  ++g_hits;
}
)");
  ASSERT_EQ(FindingsFor(r, "shard-static").size(), 1u);
  EXPECT_EQ(FindingsFor(r, "shard-static")[0].line, 4);
  ASSERT_EQ(FindingsFor(r, "shard-global").size(), 1u);
  EXPECT_EQ(FindingsFor(r, "shard-global")[0].line, 6);
}

TEST(HotlintEngine, ConstGlobalsAndConstStaticsAreClean) {
  HotReport r = Analyze(R"(
const long kLimit = 64;
constexpr int kShift = 3;
INBAND_HOT long scale(long v) {
  static const int kBase = 2;
  return v * kBase * kLimit << kShift;
}
)");
  EXPECT_TRUE(r.findings.empty());
}

// ---------------------------------------------------------------------------
// Engine: waivers and cold regions.
// ---------------------------------------------------------------------------

TEST(HotlintEngine, CommentWaiverOnLineAboveWaives) {
  HotReport r = Analyze(R"(
#include <vector>
struct S {
  std::vector<int> v_;
  INBAND_HOT void admit(int x) {
    // hotlint:allow(hot-growth): admission is bounded by the eviction cap
    v_.push_back(x);
  }
};
)");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_TRUE(r.findings[0].waived);
  EXPECT_EQ(r.unwaived(), 0u);
  EXPECT_EQ(r.waived(), 1u);
  EXPECT_TRUE(r.unused_waivers.empty());
}

TEST(HotlintEngine, ColdRegionWaivesHotFindingsAndCutsEdges) {
  HotReport r = Analyze(R"(
#include <vector>
void rebuild(std::vector<int>& v) { v.push_back(1); }
struct S {
  INBAND_HOT int get(int k) {
    if (k < limit_) return k;
    INBAND_COLD_OK("miss path: rebuild is off the per-packet path");
    auto* p = new int[8];
    delete[] p;
    std::vector<int> scratch;
    rebuild(scratch);
    return 0;
  }
  int limit_ = 0;
};
)");
  // Both allocs waived by the region; rebuild() unreachable (edge cut).
  EXPECT_EQ(r.unwaived(), 0u);
  EXPECT_EQ(FindingsFor(r, "hot-alloc").size(), 2u);
  for (const Finding& f : FindingsFor(r, "hot-alloc")) {
    EXPECT_TRUE(f.waived);
    EXPECT_NE(f.waiver_reason.find("miss path"), std::string::npos);
  }
  EXPECT_TRUE(FindingsFor(r, "hot-growth").empty());
}

TEST(HotlintEngine, ColdRegionDoesNotExcuseShardState) {
  HotReport r = Analyze(R"(
long g_count = 0;
INBAND_HOT void tick() {
  INBAND_COLD_OK("slow path");
  ++g_count;
}
)");
  ASSERT_EQ(FindingsFor(r, "shard-global").size(), 1u);
  EXPECT_FALSE(FindingsFor(r, "shard-global")[0].waived);
}

TEST(HotlintEngine, UnknownRuleAndMissingReasonAreBadWaivers) {
  HotReport r = Analyze(R"(
#include <vector>
struct S {
  std::vector<int> v_;
  INBAND_HOT void f(int x) {
    // hotlint:allow(hot-warp): no such rule
    v_.push_back(x);
  }
  void g(int x) {
    // hotlint:allow(hot-growth)
    v_.push_back(x);
  }
};
)");
  EXPECT_EQ(FindingsFor(r, "bad-waiver").size(), 2u);
}

TEST(HotlintEngine, WaiverMatchingNothingIsReportedUnused) {
  HotReport r = Analyze(R"(
INBAND_HOT int f(int x) {
  // hotlint:allow(hot-alloc): nothing here allocates
  return x + 1;
}
)");
  EXPECT_TRUE(r.findings.empty());
  ASSERT_EQ(r.unused_waivers.size(), 1u);
  EXPECT_EQ(r.unused_waivers[0].line, 3);
}

TEST(HotlintEngine, WaiverOnUnreachableHazardStillCountsAsUsed) {
  // Probe mode: g() is unreachable, but its waiver must not be reported
  // unused — otherwise every annotation on cold helper code would nag.
  HotReport r = Analyze(R"(
#include <vector>
struct S {
  std::vector<int> v_;
  void g(int x) {
    // hotlint:allow(hot-growth): helper is only called at startup
    v_.push_back(x);
  }
};
)");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_TRUE(r.unused_waivers.empty());
}

// ---------------------------------------------------------------------------
// Binary: shell `hotlint` over the fixture corpus.
// ---------------------------------------------------------------------------

struct RunResult {
  int exit_code = -1;
  std::string out;
};

RunResult RunHotlint(const std::string& args) {
  const std::string cmd = std::string(HOTLINT_BIN) + " " + args + " 2>&1";
  RunResult r;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  char buf[4096];
  size_t n = 0;
  while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) r.out.append(buf, n);
  const int status = pclose(pipe);
  r.exit_code = (status >= 0 && WIFEXITED(status)) ? WEXITSTATUS(status) : -1;
  return r;
}

std::string Fixture(const std::string& rel) {
  return std::string(HOTLINT_FIXTURES) + "/" + rel;
}

// Extracts the N from `"<key>": N` in the JSON counts object.
int JsonCount(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const size_t pos = json.rfind(needle);
  if (pos == std::string::npos) return -1;
  return std::atoi(json.c_str() + pos + needle.size());
}

TEST(HotlintBinary, LegacyEventQueueReplicaIsCaught) {
  // The pre-PR-4 event queue: std::function handlers in a node-based map,
  // heap node per push. Every hazard class involved must be flagged.
  RunResult r = RunHotlint("--json " + Fixture("stdfunc_hot.cc"));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.out.find("\"rule\": \"hot-stdfunc\""), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("\"rule\": \"hot-growth\""), std::string::npos);
  EXPECT_NE(r.out.find("\"rule\": \"hot-alloc\""), std::string::npos);
  EXPECT_NE(r.out.find("LegacyQueue::push"), std::string::npos);
  EXPECT_EQ(JsonCount(r.out, "unwaived"), 5) << r.out;
}

TEST(HotlintBinary, ShardStateFixtureIsCaught) {
  RunResult r = RunHotlint("--json " + Fixture("shard_state.cc"));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.out.find("\"rule\": \"shard-global\""), std::string::npos);
  EXPECT_NE(r.out.find("\"rule\": \"shard-static\""), std::string::npos);
}

TEST(HotlintBinary, CleanAndColdFixturesExitZero) {
  EXPECT_EQ(RunHotlint(Fixture("clean.cc")).exit_code, 0);
  RunResult cold = RunHotlint("--json " + Fixture("cold_ok.cc"));
  EXPECT_EQ(cold.exit_code, 0);
  EXPECT_EQ(JsonCount(cold.out, "unwaived"), 0) << cold.out;
  EXPECT_EQ(JsonCount(cold.out, "waived"), 2) << cold.out;
}

TEST(HotlintBinary, WaivedFixtureExitsZeroWithCounts) {
  RunResult r = RunHotlint("--json " + Fixture("waived.cc"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(JsonCount(r.out, "unwaived"), 0) << r.out;
  EXPECT_EQ(JsonCount(r.out, "waived"), 2) << r.out;
}

TEST(HotlintBinary, OperatorDispatchFixtureIsCaught) {
  // Every hazard sits behind an operator or template-member call form; the
  // hot root is itself an operator().
  RunResult r = RunHotlint("--json " + Fixture("operator_dispatch.cc"));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(JsonCount(r.out, "unwaived"), 6) << r.out;
  EXPECT_NE(r.out.find("Picker::operator()"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("Accum::operator+"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("Table::lookup"), std::string::npos) << r.out;
}

TEST(HotlintBinary, NestedColdFixtureWaivesWithInnermostReason) {
  RunResult r = RunHotlint("--json " + Fixture("nested_cold.cc"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(JsonCount(r.out, "unwaived"), 0) << r.out;
  EXPECT_EQ(JsonCount(r.out, "waived"), 4) << r.out;
  EXPECT_NE(r.out.find("diagnostics snapshot"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("rebuild is off the per-packet path"),
            std::string::npos)
      << r.out;
}

TEST(HotlintBinary, WaiverHygieneFires) {
  RunResult r = RunHotlint(Fixture("bad_waiver.cc"));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.out.find("bad-waiver"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("unused waiver"), std::string::npos) << r.out;
}

TEST(HotlintBinary, CallgraphDotDump) {
  RunResult r = RunHotlint("--callgraph=dot " + Fixture("cold_ok.cc"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("digraph hotlint"), std::string::npos) << r.out;
  // The hot root is bold; the cold-cut callee is dotted (unreachable).
  EXPECT_NE(r.out.find("\"Table::lookup\" [shape=box, style=bold]"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("\"build_report\" [style=dotted]"), std::string::npos)
      << r.out;
}

TEST(HotlintBinary, CallgraphJsonDump) {
  RunResult r = RunHotlint("--callgraph=json " + Fixture("stdfunc_hot.cc"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("\"functions\""), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("LegacyQueue::push"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("\"hot\": true"), std::string::npos) << r.out;
}

TEST(HotlintBinary, ListRulesNamesEveryRule) {
  RunResult r = RunHotlint("--list-rules");
  EXPECT_EQ(r.exit_code, 0);
  for (const std::string& rule : detlint::hot_rule_names()) {
    EXPECT_NE(r.out.find(rule), std::string::npos) << rule;
  }
}

TEST(HotlintBinary, UsageErrorsExitTwo) {
  EXPECT_EQ(RunHotlint("--callgraph=svg x.cc").exit_code, 2);
  EXPECT_EQ(RunHotlint("").exit_code, 2);
}

}  // namespace
