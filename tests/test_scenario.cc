// Integration tests: the full rigs behind the paper's figures, at reduced
// scale so they run in seconds. These assert the *shapes* the paper reports:
// estimator accuracy and tracking (Fig. 2), and the latency-aware LB beating
// static Maglev after a delay injection (Fig. 3).
#include <gtest/gtest.h>

#include "core/ensemble_timeout.h"
#include "core/fixed_timeout.h"
#include "scenario/backlogged_rig.h"
#include "scenario/cluster_rig.h"
#include "scenario/metrics.h"

namespace inband {
namespace {

// --- metrics helpers ---

TEST(Metrics, RelativeErrorsAgainstStepFunction) {
  std::vector<Sample> truth{{0, 100}, {ms(1), 200}};
  std::vector<Sample> est{{us(500), 110}, {ms(2), 100}};
  const auto errs = relative_errors(est, truth);
  ASSERT_EQ(errs.size(), 2u);
  EXPECT_NEAR(errs[0], 0.10, 1e-9);
  EXPECT_NEAR(errs[1], 0.50, 1e-9);
}

TEST(Metrics, EstimatesBeforeTruthSkipped) {
  std::vector<Sample> truth{{ms(1), 100}};
  std::vector<Sample> est{{0, 50}, {ms(2), 100}};
  EXPECT_EQ(relative_errors(est, truth).size(), 1u);
}

TEST(Metrics, WindowedStats) {
  std::vector<Sample> s{{0, 10}, {us(1), 20}, {ms(1), 1000}};
  EXPECT_DOUBLE_EQ(mean_in_window(s, 0, ms(1)), 15.0);
  EXPECT_DOUBLE_EQ(percentile_in_window(s, 0, ms(2), 1.0), 1000.0);
  EXPECT_DOUBLE_EQ(mean_in_window(s, ms(5), ms(6)), 0.0);
}

// --- Fig. 2 rig ---

class BackloggedRigTest : public testing::Test {
 protected:
  static BackloggedRigConfig small_config() {
    BackloggedRigConfig cfg;
    cfg.duration = ms(1200);
    cfg.step_time = ms(600);
    cfg.step_extra = us(1500);
    return cfg;
  }
};

TEST_F(BackloggedRigTest, ProducesTrafficAndGroundTruth) {
  BackloggedRig rig{small_config()};
  rig.run();
  EXPECT_GT(rig.arrivals().size(), 1000u);
  EXPECT_GT(rig.ground_truth().size(), 500u);
  // Arrivals are monotone.
  for (std::size_t i = 1; i < rig.arrivals().size(); ++i) {
    EXPECT_LE(rig.arrivals()[i - 1], rig.arrivals()[i]);
  }
}

TEST_F(BackloggedRigTest, GroundTruthShowsTheStep) {
  BackloggedRig rig{small_config()};
  rig.run();
  const auto& gt = rig.ground_truth();
  const double before = mean_in_window(gt, ms(100), ms(500));
  const double after = mean_in_window(gt, ms(700), ms(1100));
  // ~210us RTT before; +1.5ms after.
  EXPECT_GT(before, static_cast<double>(us(180)));
  EXPECT_LT(before, static_cast<double>(us(300)));
  EXPECT_GT(after, before + static_cast<double>(us(1200)));
}

TEST_F(BackloggedRigTest, EnsembleTracksStepFixedDoesNot) {
  BackloggedRig rig{small_config()};
  rig.run();

  // Offline replay of the LB-observed arrivals through the estimators.
  EnsembleTimeout ensemble{{}};
  EnsembleState es;
  std::vector<Sample> ens_samples;
  FixedTimeout fixed_low{us(64)};
  FixedTimeoutState fl;
  std::vector<Sample> low_samples;
  FixedTimeout fixed_high{us(1024)};
  FixedTimeoutState fh;
  std::vector<Sample> high_samples;

  for (SimTime t : rig.arrivals()) {
    if (SimTime v = ensemble.on_packet(es, t); v != kNoTime) {
      ens_samples.push_back({t, v});
    }
    if (SimTime v = fixed_low.on_packet(fl, t); v != kNoTime) {
      low_samples.push_back({t, v});
    }
    if (SimTime v = fixed_high.on_packet(fh, t); v != kNoTime) {
      high_samples.push_back({t, v});
    }
  }

  // Drop estimator warm-up (first epoch) before scoring.
  auto after_warmup = [](const std::vector<Sample>& v) {
    std::vector<Sample> out;
    for (const auto& s : v) {
      if (s.t > ms(128)) out.push_back(s);
    }
    return out;
  };
  const auto ens_acc =
      summarize_accuracy(after_warmup(ens_samples), rig.ground_truth());
  const auto low_acc =
      summarize_accuracy(after_warmup(low_samples), rig.ground_truth());

  ASSERT_GT(ens_acc.samples, 100u);
  // The paper's claim: the ensemble tracks the truth closely; a bad fixed
  // timeout is wildly off (the 64us band in Fig. 2a).
  EXPECT_LT(ens_acc.median_rel_error, 0.25);
  EXPECT_GT(low_acc.median_rel_error, 0.5);

  // And the too-high fixed timeout produces far fewer samples before the
  // step than the ensemble does in the same interval (it merges batches).
  const auto count_before = [](const std::vector<Sample>& v, SimTime cut) {
    std::size_t n = 0;
    for (const auto& s : v) n += s.t < cut ? 1 : 0;
    return n;
  };
  EXPECT_LT(count_before(high_samples, ms(600)),
            count_before(ens_samples, ms(600)) / 2);
}

TEST_F(BackloggedRigTest, DelayedAckStillObservable) {
  auto cfg = small_config();
  cfg.delayed_ack = true;
  BackloggedRig rig{cfg};
  rig.run();
  EXPECT_GT(rig.arrivals().size(), 500u);
  EXPECT_GT(rig.ground_truth().size(), 100u);
}

// --- Fig. 3 rig ---

ClusterRigConfig small_cluster(LbMode mode) {
  ClusterRigConfig cfg;
  cfg.mode = mode;
  cfg.duration = sec(4);
  cfg.inject_time = sec(2);
  cfg.inject_extra = ms(1);
  cfg.num_client_hosts = 2;
  cfg.client.connections = 4;
  cfg.client.pipeline = 4;
  cfg.client.requests_per_conn = 50;
  cfg.server.workers = 8;
  cfg.maglev_table_size = 1021;
  cfg.share_sample_interval = ms(5);
  // Controller tuned as in the benches.
  cfg.inband.ensemble.epoch = ms(16);
  cfg.inband.controller.min_samples = 3;
  cfg.inband.controller.cooldown = ms(1);
  cfg.inband.tracker.ewma_tau = ms(2);
  return cfg;
}

TEST(ClusterRig, StaticMaglevStaysInflamed) {
  ClusterRig rig{small_cluster(LbMode::kStaticMaglev)};
  rig.run();
  const auto get = rig.get_latency_samples();
  ASSERT_GT(get.size(), 1000u);
  const double p95_before =
      percentile_in_window(get, sec(1), sec(2), 0.95);
  const double p95_after =
      percentile_in_window(get, sec(3), sec(4), 0.95);
  // Tail inflated by roughly the injected 1ms and it never recovers.
  EXPECT_GT(p95_after, p95_before + static_cast<double>(us(700)));
}

TEST(ClusterRig, InbandShiftsTrafficAndRecovers) {
  ClusterRig rig{small_cluster(LbMode::kInband)};
  rig.run();
  auto* policy = rig.inband_policy();
  ASSERT_NE(policy, nullptr);

  // Traffic shifted off the victim.
  EXPECT_GT(policy->controller().shifts(), 0u);
  EXPECT_LT(policy->table().slots_owned(0),
            policy->table().slots_owned(1) / 4);

  // Reaction: first shift lands within a few ms of the injection.
  ASSERT_FALSE(policy->shift_history().empty());
  SimTime first_shift = kNoTime;
  for (const auto& ev : policy->shift_history()) {
    if (ev.t >= sec(2)) {
      first_shift = ev.t;
      break;
    }
  }
  ASSERT_NE(first_shift, kNoTime);
  EXPECT_LT(first_shift - sec(2), ms(50));

  // Tail latency after the injection settles well below the injected 1ms.
  const auto get = rig.get_latency_samples();
  const double p95_late = percentile_in_window(get, ms(3500), sec(4), 0.95);
  EXPECT_LT(p95_late, static_cast<double>(ms(1)));
}

TEST(ClusterRig, InbandBeatsStaticAfterInjection) {
  ClusterRig maglev{small_cluster(LbMode::kStaticMaglev)};
  maglev.run();
  ClusterRig inband{small_cluster(LbMode::kInband)};
  inband.run();
  const double p95_maglev = percentile_in_window(
      maglev.get_latency_samples(), sec(3), sec(4), 0.95);
  const double p95_inband = percentile_in_window(
      inband.get_latency_samples(), sec(3), sec(4), 0.95);
  EXPECT_LT(p95_inband, p95_maglev * 0.7);
}

TEST(ClusterRig, DeterministicAcrossRuns) {
  ClusterRig a{small_cluster(LbMode::kInband)};
  a.run();
  ClusterRig b{small_cluster(LbMode::kInband)};
  b.run();
  ASSERT_EQ(a.records().size(), b.records().size());
  for (std::size_t i = 0; i < a.records().size(); i += 97) {
    EXPECT_EQ(a.records()[i].latency, b.records()[i].latency) << i;
    EXPECT_EQ(a.records()[i].sent_at, b.records()[i].sent_at) << i;
  }
  EXPECT_EQ(a.inband_policy()->controller().shifts(),
            b.inband_policy()->controller().shifts());
}

TEST(ClusterRig, BaselinePoliciesServeTraffic) {
  for (LbMode mode : {LbMode::kRoundRobin, LbMode::kLeastConn,
                      LbMode::kWeightedRandom}) {
    ClusterRigConfig cfg = small_cluster(mode);
    cfg.duration = sec(1);
    cfg.inject_time = sec(5);  // never
    ClusterRig rig{cfg};
    rig.run();
    EXPECT_GT(rig.records().size(), 500u) << lb_mode_name(mode);
    // Both servers got work.
    EXPECT_GT(rig.server(0).requests_served(), 100u) << lb_mode_name(mode);
    EXPECT_GT(rig.server(1).requests_served(), 100u) << lb_mode_name(mode);
  }
}

TEST(ClusterRig, ConnectionsSurviveShifts) {
  // Per-connection consistency: no resets seen by clients even while the
  // table is being rewritten underneath.
  ClusterRig rig{small_cluster(LbMode::kInband)};
  rig.run();
  for (int c = 0; c < rig.num_clients(); ++c) {
    EXPECT_EQ(rig.client(c).connection_failures(), 0u);
  }
}

TEST(ClusterRig, MultiLbSharesServers) {
  ClusterRigConfig cfg = small_cluster(LbMode::kInband);
  cfg.num_lbs = 2;
  cfg.num_client_hosts = 2;  // one per LB
  cfg.duration = sec(2);
  cfg.inject_time = sec(1);
  ClusterRig rig{cfg};
  rig.run();
  ASSERT_EQ(rig.num_lbs(), 2);
  // Both LBs forwarded traffic and both reacted to the shared slow server.
  for (int l = 0; l < 2; ++l) {
    EXPECT_GT(rig.lb(l).counters().value("lb.packets_forwarded"), 1000u);
    ASSERT_NE(rig.inband_policy(l), nullptr);
    EXPECT_GT(rig.inband_policy(l)->samples_total(), 100u);
  }
}


// --- §5(1): far clients and flow-floor normalization ---

TEST(FarClients, AbsoluteScoringDrainsHealthyServers) {
  ClusterRigConfig cfg = small_cluster(LbMode::kInband);
  cfg.num_client_hosts = 4;
  cfg.client_extra_distance = {0, 0, 0, ms(1)};  // client 3 is far
  cfg.inject_time = sec(100);                    // no fault at all
  cfg.duration = sec(3);
  ClusterRig rig{cfg};
  rig.run();
  auto* policy = rig.inband_policy();
  // Every shift is spurious (there is no slow server).
  EXPECT_GT(policy->controller().shifts(), 0u);
}

TEST(FarClients, FlowFloorNormalizationPreventsSpuriousShifts) {
  ClusterRigConfig cfg = small_cluster(LbMode::kInband);
  cfg.num_client_hosts = 4;
  cfg.client_extra_distance = {0, 0, 0, ms(1)};
  cfg.inject_time = sec(100);
  cfg.duration = sec(3);
  cfg.inband.normalize_client_floor = true;
  ClusterRig rig{cfg};
  rig.run();
  auto* policy = rig.inband_policy();
  EXPECT_EQ(policy->controller().shifts(), 0u);
  // Shares stay balanced.
  const auto shares = policy->table().shares();
  EXPECT_NEAR(shares[0], 0.5, 0.05);
}

TEST(FarClients, FlowFloorStillReactsToRealFault) {
  ClusterRigConfig cfg = small_cluster(LbMode::kInband);
  cfg.num_client_hosts = 4;
  cfg.client_extra_distance = {0, 0, 0, ms(1)};
  cfg.inband.normalize_client_floor = true;  // normalization on
  ClusterRig rig{cfg};                      // real 1ms fault at t=2s
  rig.run();
  auto* policy = rig.inband_policy();
  EXPECT_GT(policy->controller().shifts(), 0u);
  EXPECT_LT(policy->table().slots_owned(0),
            policy->table().slots_owned(1) / 4);
}

// --- jitter does not break determinism ---

TEST(BackloggedRigTest2, JitteredRunsAreDeterministic) {
  BackloggedRigConfig cfg;
  cfg.duration = ms(300);
  BackloggedRig a{cfg};
  a.run();
  BackloggedRig b{cfg};
  b.run();
  ASSERT_EQ(a.arrivals().size(), b.arrivals().size());
  for (std::size_t i = 0; i < a.arrivals().size(); i += 131) {
    EXPECT_EQ(a.arrivals()[i], b.arrivals()[i]) << i;
  }
  ASSERT_EQ(a.ground_truth().size(), b.ground_truth().size());
}

TEST(BackloggedRigTest2, SeedChangesJitteredTimeline) {
  BackloggedRigConfig cfg;
  cfg.duration = ms(300);
  BackloggedRig a{cfg};
  a.run();
  cfg.seed = 43;
  BackloggedRig b{cfg};
  b.run();
  // Same macro behaviour, different micro timings.
  bool any_difference = a.arrivals().size() != b.arrivals().size();
  for (std::size_t i = 0;
       !any_difference && i < std::min(a.arrivals().size(),
                                       b.arrivals().size());
       ++i) {
    any_difference = a.arrivals()[i] != b.arrivals()[i];
  }
  EXPECT_TRUE(any_difference);
}


// --- handshake bootstrap in the cluster ---

TEST(ClusterRig, HandshakeBootstrapProducesEarlySamples) {
  ClusterRigConfig cfg = small_cluster(LbMode::kInband);
  cfg.duration = sec(2);
  cfg.inject_time = sec(10);  // no fault
  cfg.inband.use_handshake_bootstrap = true;
  ClusterRig rig{cfg};
  rig.run();
  auto* policy = rig.inband_policy();
  // Churned connections hand the LB one handshake sample each.
  EXPECT_GT(policy->handshake_samples(), 50u);
  // And the bootstrap did not destabilize anything: no spurious shifts.
  EXPECT_EQ(policy->controller().shifts(), 0u);
}

// --- backend health churn under live traffic (§2.5) ---

TEST(ClusterRig, HealthFlapDoesNotBreakConnections) {
  ClusterRigConfig cfg = small_cluster(LbMode::kStaticMaglev);
  cfg.duration = sec(3);
  cfg.inject_time = sec(10);  // no latency fault; we flap health instead
  ClusterRig rig{cfg};
  // Mark server 0 unhealthy at 1s and healthy again at 2s.
  rig.sim().schedule_at(sec(1), [&] { rig.lb().set_backend_health(0, false); });
  rig.sim().schedule_at(sec(2), [&] { rig.lb().set_backend_health(0, true); });
  rig.run();
  // Existing connections drained gracefully: no client saw a reset.
  for (int c = 0; c < rig.num_clients(); ++c) {
    EXPECT_EQ(rig.client(c).connection_failures(), 0u);
  }
  // While unhealthy, new flows avoided server 0 (its request rate sagged).
  const auto get = rig.get_latency_samples();
  EXPECT_GT(get.size(), 1000u);
  // After restoration both servers serve again.
  EXPECT_GT(rig.server(0).requests_served(), 1000u);
  EXPECT_GT(rig.server(1).requests_served(), 1000u);
}

}  // namespace
}  // namespace inband
