// Tests for the sharded parallel simulation: the SPSC transport, the
// cross-shard channel's conservative horizon semantics, the worker pool, and
// — the heart of the PR — digest invariance of ShardedRig across worker
// counts and scheduling seeds, with the single-threaded ClusterRig as oracle.
//
// The invariance suites run under TSan in CI (the parallel-rig job): the
// digest equalities prove determinism, TSan proves the absence of data races
// while the workers genuinely interleave.

#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "app/message.h"
#include "fault/fault_plan.h"
#include "net/shard_channel.h"
#include "scenario/cluster_rig.h"
#include "scenario/sharded_rig.h"
#include "sim/parallel.h"
#include "util/spsc_queue.h"

namespace inband {
namespace {

// ---------------------------------------------------------------- SpscQueue

TEST(SpscQueue, FifoAcrossChunkBoundaries) {
  SpscQueue<int> q;
  const int n = 1000;  // spans many 64-slot chunks
  int next_expected = 0;
  for (int i = 0; i < n; ++i) {
    q.push(i);
    // Drain in a staggered pattern so head and tail straddle chunk edges.
    if (i % 3 == 0) {
      const int* head = q.peek();
      ASSERT_NE(head, nullptr);
      EXPECT_EQ(*head, next_expected);
      q.consume();
      ++next_expected;
    }
    if (i % 128 == 0) q.reclaim();
  }
  while (next_expected < n) {
    const int* head = q.peek();
    ASSERT_NE(head, nullptr);
    EXPECT_EQ(*head, next_expected);
    q.consume();
    ++next_expected;
  }
  EXPECT_EQ(q.peek(), nullptr);
  q.reclaim();
  EXPECT_EQ(q.pushed(), static_cast<std::uint64_t>(n));
  EXPECT_EQ(q.consumed(), static_cast<std::uint64_t>(n));
}

TEST(SpscQueue, ExactChunkMultipleDrainAndReclaim) {
  // Push exactly k * kChunkCap, consume everything, reclaim everything:
  // the reclaim walk must stop cleanly at the chain's end.
  SpscQueue<int> q;
  const int n = static_cast<int>(SpscQueue<int>::kChunkCap) * 3;
  for (int i = 0; i < n; ++i) q.push(i);
  for (int i = 0; i < n; ++i) {
    const int* head = q.peek();
    ASSERT_NE(head, nullptr);
    EXPECT_EQ(*head, i);
    q.consume();
  }
  q.reclaim();
  EXPECT_EQ(q.peek(), nullptr);
  // The queue must keep working after a full drain.
  q.push(7777);
  const int* head = q.peek();
  ASSERT_NE(head, nullptr);
  EXPECT_EQ(*head, 7777);
  q.consume();
  q.reclaim();
}

TEST(SpscQueue, TwoThreadStressKeepsOrder) {
  // Producer and consumer race for real; TSan vets the memory ordering.
  SpscQueue<std::uint64_t> q;
  constexpr std::uint64_t kCount = 200'000;
  std::thread producer{[&q] {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      q.push(i);
      if (i % 512 == 0) q.reclaim();
    }
  }};
  std::uint64_t expected = 0;
  while (expected < kCount) {
    const std::uint64_t* head = q.peek();
    if (head == nullptr) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(*head, expected);
    q.consume();
    ++expected;
  }
  producer.join();
  q.reclaim();
  EXPECT_EQ(q.pushed(), kCount);
  EXPECT_EQ(q.consumed(), kCount);
}

// -------------------------------------------------------------- ShardChannel

Packet make_kv_packet(std::uint64_t msg_id) {
  Packet p;
  p.seq = 42;
  p.payload_len = 100;
  auto msg = std::make_shared<KvMessage>();
  msg->id = msg_id;
  msg->op = KvOp::kSet;
  msg->value_len = 64;
  p.msgs.push_msg(MessageRef{100, std::move(msg)});
  return p;
}

TEST(ShardChannel, LowerBoundTracksHorizonWhenEmpty) {
  ShardChannel ch{0, us(100)};
  EXPECT_EQ(ch.lower_bound(), 0);  // nothing announced yet: no promise
  ch.announce(us(50));
  EXPECT_EQ(ch.lower_bound(), us(150));
  ch.announce(us(40));  // horizons never regress
  EXPECT_EQ(ch.lower_bound(), us(150));
  ch.announce(us(400));
  EXPECT_EQ(ch.lower_bound(), us(500));
}

TEST(ShardChannel, HeadDeliveryTimeBeatsHorizon) {
  ShardChannel ch{1, us(100)};
  ch.announce(us(200));  // horizon us(300)
  ch.push(us(200), /*from=*/1, /*to=*/2, make_kv_packet(9));
  EXPECT_EQ(ch.lower_bound(), us(300));  // head deliver_at = 200 + L
  ASSERT_NE(ch.peek(), nullptr);
  EXPECT_EQ(ch.peek()->deliver_at, us(300));

  SimTime at = 0;
  Ipv4 from = 0;
  Ipv4 to = 0;
  const Packet got = ch.take_detached(&at, &from, &to);
  EXPECT_EQ(at, us(300));
  EXPECT_EQ(from, 1u);
  EXPECT_EQ(to, 2u);
  EXPECT_EQ(got.seq, 42u);
  // Empty again: back to the announced horizon.
  EXPECT_EQ(ch.lower_bound(), us(300));
  EXPECT_EQ(ch.pushed(), 1u);
  EXPECT_EQ(ch.consumed_count(), 1u);
}

TEST(ShardChannel, TakeDetachedDeepCopiesMessagePayloads) {
  ShardChannel ch{2, us(10)};
  Packet original = make_kv_packet(1234);
  const AppPayload* original_payload = original.msgs.begin()->payload.get();
  ch.push(us(5), 1, 2, original);

  SimTime at = 0;
  Ipv4 from = 0;
  Ipv4 to = 0;
  const Packet got = ch.take_detached(&at, &from, &to);
  ASSERT_EQ(static_cast<int>(got.msgs.size()), 1);
  const auto* kv = dynamic_cast<const KvMessage*>(got.msgs.begin()->payload.get());
  ASSERT_NE(kv, nullptr);
  EXPECT_EQ(kv->id, 1234u);
  EXPECT_EQ(kv->op, KvOp::kSet);
  // Fresh ownership: the detached copy must not alias the producer's payload.
  EXPECT_NE(got.msgs.begin()->payload.get(), original_payload);
  ch.announce(us(100));  // reclaims the consumed slot, producer-side
}

// ----------------------------------------------------------- run_shard_programs

// Toy program: counts to `target` in increments, no channels involved.
class CountingProgram : public ShardProgram {
 public:
  explicit CountingProgram(int target) : target_{target} {}
  bool advance() override {
    if (count_ >= target_) return false;
    ++count_;
    return true;
  }
  void publish() override { ++publishes_; }
  bool done() const override { return count_ >= target_; }
  int count() const { return count_; }
  int publishes() const { return publishes_; }

 private:
  const int target_;
  int count_ = 0;
  int publishes_ = 0;
};

TEST(RunShardPrograms, DrivesEveryProgramToCompletion) {
  for (const int workers : {1, 2, 3, 8}) {
    std::vector<CountingProgram> progs;
    for (int i = 0; i < 5; ++i) progs.emplace_back(100 + i);
    std::vector<ShardProgram*> ptrs;
    for (auto& p : progs) ptrs.push_back(&p);
    run_shard_programs(ptrs, workers, /*sched_seed=*/workers);
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(progs[static_cast<std::size_t>(i)].count(), 100 + i)
          << "workers=" << workers;
      EXPECT_GT(progs[static_cast<std::size_t>(i)].publishes(), 0)
          << "workers=" << workers;
    }
  }
}

// ---------------------------------------------------------------- ShardedRig

// The perf_dataplane rig configs (bench/perf_dataplane.cc rig_config): the
// quick and full variants whose ClusterRig digests are pinned repo-wide.
ClusterRigConfig dataplane_rig_config(int servers, int clients,
                                      SimTime duration) {
  ClusterRigConfig cfg;
  cfg.mode = LbMode::kInband;
  cfg.num_servers = servers;
  cfg.num_client_hosts = clients;
  cfg.duration = duration;
  cfg.inject_time = duration / 2;
  cfg.seed = 2022;
  cfg.client.connections = 4;
  cfg.client.pipeline = 4;
  cfg.server.workers = 8;
  cfg.share_sample_interval = ms(10);
  cfg.audit_interval = 0;
  return cfg;
}

// A scaled-down sharded topology for the invariance sweeps.
ShardedRigConfig sharded_config(int shards, int workers,
                                std::uint64_t sched_seed) {
  ShardedRigConfig cfg;
  cfg.num_shards = shards;
  cfg.workers = workers;
  cfg.sched_seed = sched_seed;
  cfg.shard = dataplane_rig_config(2, 2, ms(400));
  cfg.cross_latency = us(200);
  cfg.remote_clients_per_shard = 1;
  cfg.remote_client.connections = 2;
  cfg.remote_client.pipeline = 2;
  cfg.remote_client.requests_per_conn = 50;
  return cfg;
}

struct ShardedResult {
  std::vector<std::uint64_t> shard_digests;
  std::uint64_t combined = 0;
  std::uint64_t cross_packets = 0;
  std::uint64_t records = 0;
};

ShardedResult run_sharded(const ShardedRigConfig& cfg) {
  ShardedRig rig{cfg};
  rig.run();
  ShardedResult r;
  for (int s = 0; s < rig.num_shards(); ++s) {
    r.shard_digests.push_back(rig.shard_digest(s));
    EXPECT_FALSE(rig.remote_records(s).empty())
        << "shard " << s << " saw no cross-shard request completions";
  }
  r.combined = rig.combined_digest();
  r.cross_packets = rig.cross_packets();
  r.records = rig.total_records();
  return r;
}

TEST(ShardedRig, SingleShardOneWorkerMatchesClusterRigQuickDigest) {
  // The oracle identity: S=1, W=1, no remote clients is a plain ClusterRig
  // driven step-by-step, and must land on the pinned quick digest
  // (tests/test_core.cc QuickRigDigestPinnedAcrossRefactor).
  ShardedRigConfig cfg;
  cfg.num_shards = 1;
  cfg.workers = 1;
  cfg.shard = dataplane_rig_config(2, 2, ms(400));
  cfg.remote_clients_per_shard = 0;
  ShardedRig rig{cfg};
  rig.run();
  EXPECT_EQ(rig.shard(0).state_digest(), 0x082ea340888d2502ULL);

  ClusterRig oracle{dataplane_rig_config(2, 2, ms(400))};
  oracle.run();
  EXPECT_EQ(rig.shard(0).state_digest(), oracle.state_digest());
  EXPECT_EQ(rig.shard(0).records().size(), oracle.records().size());
}

TEST(ShardedRig, SingleShardOneWorkerMatchesFullRigDigest) {
  // ISSUE 10 satellite: the full perf_dataplane rig (seed 2022, 3000 ms,
  // 4 servers, 4 client hosts) digest, reproduced through the sharded path.
  ShardedRigConfig cfg;
  cfg.num_shards = 1;
  cfg.workers = 1;
  cfg.shard = dataplane_rig_config(4, 4, ms(3000));
  cfg.remote_clients_per_shard = 0;
  ShardedRig rig{cfg};
  rig.run();
  EXPECT_EQ(rig.shard(0).state_digest(), 0x835cb5c66c29867aULL);
}

TEST(ShardedRig, DigestsInvariantAcrossWorkerCountsAndSchedSeeds) {
  // The tentpole claim: per-shard digests (and their order-independent
  // fold) are a pure function of the configuration — worker count and
  // placement shuffle affect wall-clock only.
  const ShardedResult oracle = run_sharded(sharded_config(4, 1, 0));
  ASSERT_EQ(oracle.shard_digests.size(), 4u);
  EXPECT_GT(oracle.cross_packets, 0u);
  EXPECT_GT(oracle.records, 0u);

  struct Case {
    int workers;
    std::uint64_t sched_seed;
  };
  const Case cases[] = {{2, 0}, {4, 0}, {8, 0}, {4, 1}, {4, 0xfeedULL}};
  for (const Case& c : cases) {
    const ShardedResult got =
        run_sharded(sharded_config(4, c.workers, c.sched_seed));
    EXPECT_EQ(got.shard_digests, oracle.shard_digests)
        << "workers=" << c.workers << " sched_seed=" << c.sched_seed;
    EXPECT_EQ(got.combined, oracle.combined)
        << "workers=" << c.workers << " sched_seed=" << c.sched_seed;
    EXPECT_EQ(got.cross_packets, oracle.cross_packets);
    EXPECT_EQ(got.records, oracle.records);
  }
}

TEST(ShardedRig, CombinedDigestPinned) {
  // Pin the combined digest of the reference sharded topology, the parallel
  // analogue of the ClusterRig digest pins: any change to the merge rule,
  // the channel protocol, the address plan, or shard seeding moves this.
  const ShardedResult got = run_sharded(sharded_config(4, 2, 0));
  EXPECT_EQ(got.combined, 0x9ebf4e9b9cb381f7ULL);
}

TEST(ShardedRig, FaultPlanDeterministicAcrossWorkerCounts) {
  // Per-shard fault injector streams (PR 8's seed-derived RNG streams) must
  // keep digests worker-count-invariant with the fault layer active.
  ShardedRigConfig cfg = sharded_config(2, 1, 0);
  cfg.shard.duration = ms(200);
  cfg.shard.inject_time = ms(100);
  cfg.shard.fault = make_noise_plan(0.01, 0.01, 0.002, us(20));
  const ShardedResult a = run_sharded(cfg);
  cfg.workers = 4;
  cfg.sched_seed = 0x5eedULL;
  const ShardedResult b = run_sharded(cfg);
  EXPECT_EQ(a.shard_digests, b.shard_digests);
  EXPECT_EQ(a.combined, b.combined);
}

TEST(ShardedRig, SingleShardRemoteClientsUseLocalLinks) {
  // S=1 keeps the remote-client workload but wires it over ordinary local
  // links — no channels, no threads — and must still be reproducible.
  ShardedRigConfig cfg;
  cfg.num_shards = 1;
  cfg.workers = 1;
  cfg.shard = dataplane_rig_config(2, 2, ms(200));
  cfg.remote_clients_per_shard = 2;
  cfg.remote_client.connections = 2;
  cfg.remote_client.pipeline = 2;
  ShardedRig a{cfg};
  a.run();
  EXPECT_FALSE(a.remote_records(0).empty());
  EXPECT_EQ(a.cross_packets(), 0u);  // local links, not channels
  ShardedRig b{cfg};
  b.run();
  EXPECT_EQ(a.combined_digest(), b.combined_digest());
}

}  // namespace
}  // namespace inband
