// Golden accuracy regression for the Fig. 2(a) estimator pipeline.
//
// Runs the backlogged rig at its paper configuration and replays the
// LB-observed arrivals through FIXEDTIMEOUT, pinning the estimate quality
// against the client's ground-truth RTT with fixed tolerances. A regression
// anywhere in the pipeline — TCP timestamping, link jitter, the LB tap, the
// estimator itself — moves these numbers and fails the test. Runs are
// seeded and deterministic, so the slack in the tolerances is for humans
// editing the rig, not for noise.
//
// The assertions encode the paper's Fig. 2(a) shape: a fixed timeout tuned
// to the prevailing RTT is accurate (median within 10% of ground truth),
// and the SAME timeout is badly wrong once the RTT steps away from it —
// which is why the ensemble of Algorithm 2 exists.
#include <gtest/gtest.h>

#include <vector>

#include "core/fixed_timeout.h"
#include "scenario/backlogged_rig.h"
#include "scenario/metrics.h"

namespace inband {
namespace {

// Between the intra-window transmission spread and the ~210us base RTT:
// accurate before the step.
constexpr SimTime kDeltaForBaseRtt = us(128);
// Between the base RTT and the ~1.7ms stepped RTT: accurate after the step.
constexpr SimTime kDeltaForSteppedRtt = us(512);

class GoldenFig2a : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    BackloggedRigConfig cfg;  // paper defaults; shortened run
    cfg.duration = sec(3);
    cfg.step_time = ms(1500);
    cfg.step_extra = us(1500);
    rig_ = new BackloggedRig{cfg};
    rig_->run();
  }
  static void TearDownTestSuite() {
    delete rig_;
    rig_ = nullptr;
  }

  static std::vector<Sample> replay(SimTime delta) {
    const FixedTimeout fixed{delta};
    FixedTimeoutState fs;
    std::vector<Sample> estimates;
    for (const SimTime t : rig_->arrivals()) {
      if (const SimTime v = fixed.on_packet(fs, t); v != kNoTime) {
        estimates.push_back({t, v});
      }
    }
    return estimates;
  }

  static double median(const std::vector<Sample>& s, SimTime a, SimTime b) {
    return percentile_in_window(s, a, b, 0.5);
  }

  // Warm-up excluded before the step; step transient excluded after it.
  static constexpr SimTime kBeforeFrom = ms(200);
  static constexpr SimTime kBeforeTo = ms(1500);
  static constexpr SimTime kAfterFrom = ms(1700);
  static constexpr SimTime kAfterTo = sec(3);

  static BackloggedRig* rig_;
};

BackloggedRig* GoldenFig2a::rig_ = nullptr;

TEST_F(GoldenFig2a, RigProducesThePaperTraffic) {
  ASSERT_GT(rig_->arrivals().size(), 50'000u);
  ASSERT_GT(rig_->ground_truth().size(), 10'000u);
  // Ground truth itself is where the paper puts it: ~210-250us base RTT,
  // stepped up by ~1.5ms.
  const double gt_before = median(rig_->ground_truth(), kBeforeFrom, kBeforeTo);
  const double gt_after = median(rig_->ground_truth(), kAfterFrom, kAfterTo);
  EXPECT_GT(gt_before, static_cast<double>(us(180)));
  EXPECT_LT(gt_before, static_cast<double>(us(320)));
  EXPECT_GT(gt_after, gt_before + static_cast<double>(us(1200)));
}

TEST_F(GoldenFig2a, WellTunedTimeoutMedianWithinTenPercent) {
  // delta tuned for the base RTT, scored before the step.
  const auto est_base = replay(kDeltaForBaseRtt);
  const double med_base = median(est_base, kBeforeFrom, kBeforeTo);
  const double gt_base = median(rig_->ground_truth(), kBeforeFrom, kBeforeTo);
  ASSERT_GT(gt_base, 0.0);
  EXPECT_NEAR(med_base / gt_base, 1.0, 0.10)
      << "median estimate " << med_base << "ns vs truth " << gt_base << "ns";

  // delta tuned for the stepped RTT, scored after the step.
  const auto est_step = replay(kDeltaForSteppedRtt);
  const double med_step = median(est_step, kAfterFrom, kAfterTo);
  const double gt_step = median(rig_->ground_truth(), kAfterFrom, kAfterTo);
  ASSERT_GT(gt_step, 0.0);
  EXPECT_NEAR(med_step / gt_step, 1.0, 0.10)
      << "median estimate " << med_step << "ns vs truth " << gt_step << "ns";

  // Each tuned replay produces a healthy sample stream in its regime.
  EXPECT_GT(est_base.size(), 1000u);
  EXPECT_GT(est_step.size(), 200u);
}

TEST_F(GoldenFig2a, MistunedTimeoutFailsTheWayThePaperSays) {
  // Too-high delta before the step merges batches: far too few samples and
  // a median several times the true RTT.
  const auto est_high = replay(kDeltaForSteppedRtt);
  const double med_high = median(est_high, kBeforeFrom, kBeforeTo);
  const double gt_base = median(rig_->ground_truth(), kBeforeFrom, kBeforeTo);
  EXPECT_GT(med_high, 5.0 * gt_base);

  // Too-low delta after the step over-segments windows: the median sample
  // collapses to a fraction of the true RTT.
  const auto est_low = replay(kDeltaForBaseRtt);
  const double med_low = median(est_low, kAfterFrom, kAfterTo);
  const double gt_step = median(rig_->ground_truth(), kAfterFrom, kAfterTo);
  EXPECT_LT(med_low, 0.5 * gt_step);
}

}  // namespace
}  // namespace inband
