// Configurable cluster demo: compare any routing policy on the Fig. 3 rig.
//
//   $ ./latency_aware_cluster --mode=inband --servers=4 --duration_s=6
//         [--inject_ms=1 --alpha=0.1 --controller=gradient]
//
// Prints a p95-per-interval latency series (CSV to stdout) followed by a
// per-server and controller summary.
#include <cstdio>
#include <iostream>
#include <string>

#include "scenario/cluster_rig.h"
#include "telemetry/time_series.h"
#include "util/csv.h"
#include "util/flags.h"

using namespace inband;

namespace {

LbMode parse_mode(const std::string& s) {
  if (s == "static") return LbMode::kStaticMaglev;
  if (s == "inband") return LbMode::kInband;
  if (s == "rr") return LbMode::kRoundRobin;
  if (s == "leastconn") return LbMode::kLeastConn;
  if (s == "random") return LbMode::kWeightedRandom;
  std::fprintf(stderr, "unknown mode '%s', using inband\n", s.c_str());
  return LbMode::kInband;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode = "inband";
  std::string controller = "alpha-shift";
  std::int64_t servers = 2;
  std::int64_t clients = 2;
  std::int64_t duration_s = 6;
  std::int64_t inject_ms = 1;
  std::int64_t victim = 0;
  double alpha = 0.10;
  std::int64_t seed = 2022;
  double loss = 0.0;
  double reorder = 0.0;
  double dup = 0.0;
  std::int64_t fault_jitter_us = 0;
  std::int64_t crash_server = -1;
  std::int64_t fault_seed = 0xfa017;

  FlagSet flags{"latency-aware LB cluster demo"};
  flags.add("mode", &mode, "static|inband|rr|leastconn|random");
  flags.add("controller", &controller,
            "in-band control law: alpha-shift|knapsack|gradient|"
            "shortest-queue|shortest-queue-stale");
  flags.add("servers", &servers, "number of KV servers");
  flags.add("clients", &clients, "number of client hosts");
  flags.add("duration_s", &duration_s, "simulated seconds");
  flags.add("inject_ms", &inject_ms, "extra delay injected mid-run (ms)");
  flags.add("victim", &victim, "server index receiving the delay");
  flags.add("alpha", &alpha, "traffic fraction per shift");
  flags.add("seed", &seed, "rng seed");
  flags.add("loss", &loss, "per-packet loss probability on every link");
  flags.add("reorder", &reorder, "per-packet reorder probability");
  flags.add("dup", &dup, "per-packet duplication probability");
  flags.add("fault_jitter_us", &fault_jitter_us,
            "max per-packet fault-layer jitter (us)");
  flags.add("crash_server", &crash_server,
            "server to crash mid-run (-1 disables)");
  flags.add("fault_seed", &fault_seed, "fault-schedule rng seed");
  if (!flags.parse(argc, argv)) return 1;

  ClusterRigConfig cfg;
  cfg.mode = parse_mode(mode);
  cfg.num_servers = static_cast<int>(servers);
  cfg.num_client_hosts = static_cast<int>(clients);
  cfg.duration = sec(duration_s);
  cfg.inject_time = cfg.duration / 2;
  cfg.inject_extra = ms(inject_ms);
  cfg.victim = static_cast<int>(victim);
  cfg.seed = static_cast<std::uint64_t>(seed);
  cfg.client.requests_per_conn = 50;
  cfg.inband.ensemble.epoch = ms(16);
  cfg.inband.controller.alpha = alpha;
  cfg.inband.controller.cooldown = ms(1);
  if (const auto kind = controller_kind_from_name(controller)) {
    cfg.inband.controller_kind = *kind;
  } else {
    std::fprintf(stderr, "unknown controller '%s', using alpha-shift\n",
                 controller.c_str());
  }

  if (loss > 0.0 || reorder > 0.0 || dup > 0.0 || fault_jitter_us > 0) {
    cfg.fault = make_noise_plan(loss, reorder, dup, us(fault_jitter_us),
                                static_cast<std::uint64_t>(fault_seed));
  }
  cfg.fault.seed = static_cast<std::uint64_t>(fault_seed);
  if (crash_server >= 0 && crash_server < servers) {
    // Crash mid-run, supervisor restarts it a second later.
    cfg.fault.servers.push_back({ServerFaultSpec::Kind::kCrash,
                                 static_cast<int>(crash_server),
                                 cfg.duration / 3, cfg.duration / 3 + sec(1)});
  }

  ClusterRig rig{cfg};
  rig.run();

  // p95 GET latency per 100ms bucket.
  TimeSeries series;
  for (const auto& s : rig.get_latency_samples()) {
    series.add(s.t, static_cast<double>(s.value));
  }
  CsvWriter csv{std::cout};
  csv.header("t_ms", "p95_get_latency_us", "requests");
  for (const auto& row : series.bucketize(ms(100), Agg::kP95)) {
    csv.row(to_ms(row.bucket_start), row.value / 1e3, row.count);
  }

  std::fprintf(stderr, "\n--- summary (%s) ---\n", lb_mode_name(cfg.mode));
  for (int s = 0; s < cfg.num_servers; ++s) {
    std::fprintf(stderr, "server%d: served %llu requests, max queue %zu\n", s,
                 static_cast<unsigned long long>(
                     rig.server(s).requests_served()),
                 rig.server(s).max_queue_depth());
  }
  if (auto* fl = rig.fault()) {
    std::fprintf(
        stderr, "faults: %llu lost, %llu reordered, %llu duplicated\n",
        static_cast<unsigned long long>(fl->counters().value("fault.loss")),
        static_cast<unsigned long long>(fl->counters().value("fault.reorders")),
        static_cast<unsigned long long>(
            fl->counters().value("fault.duplicates")));
  }
  if (auto* policy = rig.inband_policy()) {
    std::fprintf(stderr,
                 "in-band (%s): %llu samples, %llu updates, "
                 "victim share %.1f%%\n",
                 policy->controller().name(),
                 static_cast<unsigned long long>(policy->samples_total()),
                 static_cast<unsigned long long>(
                     policy->controller().shifts()),
                 100.0 *
                     static_cast<double>(
                         policy->table().slots_owned(
                             static_cast<BackendId>(victim))) /
                     static_cast<double>(policy->table().table_size()));
  }
  return 0;
}
