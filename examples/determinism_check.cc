// Determinism checker: the whole simulator must be bit-reproducible.
//
// Runs the Fig. 3 cluster rig twice per configuration with identical seeds
// and compares full state digests (simulator clock/scheduler, every LB's
// conntrack + Maglev table + estimator state, every TCP stack including RNG
// engines, and the completed-request record stream). Any divergence —
// unordered-container iteration leaking into behaviour, uninitialized
// reads, time-ordering bugs — flips the digest. Sanitizers cannot catch
// this class of bug: the program is well-defined, just not reproducible.
//
// Exit code 0 when every configuration reproduces; 1 otherwise. Runs in CI
// next to the sanitizer jobs (see .github/workflows/ci.yml).
#include <cstdio>
#include <string>
#include <vector>

#include "scenario/cluster_rig.h"

namespace {

using namespace inband;

struct Case {
  std::string name;
  ClusterRigConfig config;
};

ClusterRigConfig base_config(LbMode mode, std::uint64_t seed) {
  ClusterRigConfig c;
  c.mode = mode;
  c.num_servers = 3;
  c.num_client_hosts = 2;
  c.maglev_table_size = 251;
  c.duration = sec(2);
  c.inject_time = sec(1);
  c.seed = seed;
  return c;
}

std::uint64_t run_once(const ClusterRigConfig& config) {
  ClusterRig rig(config);
  rig.run();
  return rig.state_digest();
}

}  // namespace

int main() {
  std::vector<Case> cases;
  cases.push_back({"inband", base_config(LbMode::kInband, 2022)});
  cases.push_back({"inband-seed7", base_config(LbMode::kInband, 7)});
  cases.push_back({"static-maglev", base_config(LbMode::kStaticMaglev, 2022)});
  cases.push_back({"least-conn", base_config(LbMode::kLeastConn, 2022)});
  {
    auto c = base_config(LbMode::kInband, 2022);
    c.num_lbs = 2;
    c.num_client_hosts = 4;
    cases.push_back({"inband-2lb", c});
  }
  // Fault-injected configurations: same seed + same FaultPlan must reproduce
  // even with loss, reordering, duplication, jitter, flaps and a server
  // crash in play.
  {
    auto c = base_config(LbMode::kInband, 2022);
    c.fault = make_noise_plan(0.01, 0.01, 0.002, us(20));
    cases.push_back({"inband-noise", c});
  }
  {
    auto c = base_config(LbMode::kStaticMaglev, 2022);
    c.fault = make_noise_plan(0.02, 0.01, 0.005, us(50));
    c.fault.flaps.push_back({LinkScope::kServerToClient, 1, ms(600), ms(700)});
    c.fault.servers.push_back(
        {ServerFaultSpec::Kind::kCrash, 2, ms(400), ms(900)});
    cases.push_back({"static-all-faults", c});
  }

  int failures = 0;
  for (const auto& c : cases) {
    const std::uint64_t first = run_once(c.config);
    const std::uint64_t second = run_once(c.config);
    const bool ok = first == second;
    std::printf("%-16s run1=%016llx run2=%016llx  %s\n", c.name.c_str(),
                static_cast<unsigned long long>(first),
                static_cast<unsigned long long>(second),
                ok ? "OK" : "MISMATCH");
    if (!ok) ++failures;
  }

  // Sanity: a different seed must actually change the digest, otherwise the
  // digest is not covering the state it claims to cover.
  const std::uint64_t a = run_once(base_config(LbMode::kInband, 2022));
  const std::uint64_t b = run_once(base_config(LbMode::kInband, 2023));
  std::printf("%-16s seed2022=%016llx seed2023=%016llx  %s\n",
              "digest-coverage", static_cast<unsigned long long>(a),
              static_cast<unsigned long long>(b),
              a != b ? "OK" : "DEGENERATE");
  if (a == b) ++failures;

  // Same for the fault seed: the digest must cover the fault schedule.
  auto noisy = base_config(LbMode::kInband, 2022);
  noisy.fault = make_noise_plan(0.01, 0.01, 0.002, us(20));
  const std::uint64_t f1 = run_once(noisy);
  noisy.fault.seed ^= 0x5eed;
  const std::uint64_t f2 = run_once(noisy);
  std::printf("%-16s seedA=%016llx seedB=%016llx  %s\n", "fault-coverage",
              static_cast<unsigned long long>(f1),
              static_cast<unsigned long long>(f2),
              f1 != f2 ? "OK" : "DEGENERATE");
  if (f1 == f2) ++failures;

  if (failures > 0) {
    std::printf("determinism check FAILED (%d case%s)\n", failures,
                failures == 1 ? "" : "s");
    return 1;
  }
  std::printf("determinism check passed: all runs byte-identical\n");
  return 0;
}
