// Offline trace analysis: run the estimators over a recorded packet trace —
// the workflow an operator would use against a pcap from a production LB.
//
//   $ ./trace_analysis                       # record a fresh trace and analyze
//   $ ./trace_analysis --trace=lb_trace.csv  # analyze an existing trace
//
// When recording, the Fig. 2 rig runs with a TraceRecorder installed at the
// LB vantage and the trace is written next to the analysis output, so the
// example doubles as a demonstration of trace capture.
#include <cstdio>
#include <iostream>
#include <map>
#include <string>

#include "core/ensemble_timeout.h"
#include "net/trace.h"
#include "scenario/backlogged_rig.h"
#include "util/csv.h"
#include "util/flags.h"

using namespace inband;

int main(int argc, char** argv) {
  std::string trace_path;
  std::string record_to = "lb_trace.csv";
  std::int64_t epoch_ms = 64;

  FlagSet flags{"offline in-band latency estimation over a packet trace"};
  flags.add("trace", &trace_path, "existing trace CSV (empty: record fresh)");
  flags.add("record_to", &record_to, "path for a freshly recorded trace");
  flags.add("epoch_ms", &epoch_ms, "ensemble epoch, ms");
  if (!flags.parse(argc, argv)) return 1;

  std::vector<TraceRow> rows;
  if (trace_path.empty()) {
    std::fprintf(stderr, "recording a fresh trace via the Fig. 2 rig...\n");
    BackloggedRigConfig cfg;
    cfg.duration = sec(3);
    cfg.step_time = ms(1500);
    BackloggedRig rig{cfg};
    // Vantage: the LB's VIP — only traffic the LB touches is recorded.
    TraceRecorder recorder{rig.lb().network(), rig.lb().addr()};
    rig.run();
    recorder.save_csv(record_to);
    std::fprintf(stderr, "wrote %zu trace rows to %s\n",
                 recorder.rows().size(), record_to.c_str());
    rows = recorder.rows();
  } else {
    rows = TraceRecorder::load_csv(trace_path);
    std::fprintf(stderr, "loaded %zu trace rows from %s\n", rows.size(),
                 trace_path.c_str());
  }

  // Replay client->server arrivals per flow through Algorithm 2. A row is
  // client->server if it was delivered *to* the vantage (the LB forwards it
  // on), i.e. hop_to == vantage — but after loading we no longer know the
  // vantage, so use the heuristic real deployments use: the direction whose
  // destination port is the service port (the smaller port).
  EnsembleConfig ecfg;
  ecfg.epoch = ms(epoch_ms);
  EnsembleTimeout est{ecfg};
  std::map<std::string, EnsembleState> flows;

  CsvWriter csv{std::cout};
  csv.header("t_ms", "flow", "sample_us", "delta_us");
  std::size_t samples = 0;
  for (const auto& row : rows) {
    if (row.flow.src.port < row.flow.dst.port) continue;  // response dir
    const std::string key = format_flow(row.flow);
    auto& state = flows[key];
    if (SimTime v = est.on_packet(state, row.t); v != kNoTime) {
      csv.row(to_ms(row.t), key, to_us(v), to_us(est.current_delta(state)));
      ++samples;
    }
  }
  std::fprintf(stderr, "flows: %zu, latency samples: %zu\n", flows.size(),
               samples);
  return 0;
}
