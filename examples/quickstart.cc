// Quickstart: the smallest useful program against the public API.
//
// Builds a two-server memcached-style cluster behind a latency-aware in-band
// LB, injects a 1 ms delay toward one server mid-run, and prints what the LB
// measured and did about it — the paper's headline behaviour in ~40 lines.
//
//   $ ./quickstart
#include <cstdio>

#include "scenario/cluster_rig.h"

using namespace inband;

int main() {
  ClusterRigConfig cfg;
  cfg.mode = LbMode::kInband;
  cfg.num_servers = 2;
  cfg.duration = sec(4);
  cfg.inject_time = sec(2);   // server 0 gets +1ms from here on
  cfg.inject_extra = ms(1);
  cfg.client.connections = 4;
  cfg.client.pipeline = 4;
  cfg.client.requests_per_conn = 50;  // connection churn
  cfg.inband.ensemble.epoch = ms(16);
  cfg.inband.controller.cooldown = ms(1);

  ClusterRig rig{cfg};
  rig.run();

  const auto get = rig.get_latency_samples();
  const double p95_before =
      percentile_in_window(get, sec(1), sec(2), 0.95);
  // "During" means the few ms before the LB finishes shifting traffic.
  const double p95_worst =
      percentile_in_window(get, sec(2), sec(2) + ms(20), 0.95);
  const double p95_recovered =
      percentile_in_window(get, sec(3), sec(4), 0.95);

  auto* policy = rig.inband_policy();
  std::printf("requests completed : %zu\n", rig.records().size());
  std::printf("p95 GET latency    : %.0fus (before)  %.0fus (during spike)  "
              "%.0fus (after adaptation)\n",
              p95_before / 1e3, p95_worst / 1e3, p95_recovered / 1e3);
  std::printf("latency samples measured in-band at the LB: %llu\n",
              static_cast<unsigned long long>(policy->samples_total()));
  std::printf("alpha-shifts executed: %llu; victim slot share now %.1f%%\n",
              static_cast<unsigned long long>(policy->controller().shifts()),
              100.0 * static_cast<double>(policy->table().slots_owned(0)) /
                  static_cast<double>(policy->table().table_size()));
  if (!policy->shift_history().empty()) {
    const auto& first = policy->shift_history().front();
    std::printf("first table update %.1fms after injection\n",
                to_ms(first.t - cfg.inject_time));
  }
  return 0;
}
