// Estimator playground: feed a synthetic batched arrival pattern through
// Algorithm 1 and Algorithm 2 and watch what they report.
//
//   $ ./estimator_playground --rtt_us=500 --batch=4 --intra_us=10
//         [--batches=2000 --fixed_delta_us=64]
//
// Emits one CSV row per estimator sample; stderr carries a summary. Useful
// for building intuition about why a fixed timeout fails and where the
// sample cliff sits.
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/ensemble_timeout.h"
#include "core/fixed_timeout.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/rng.h"

using namespace inband;

int main(int argc, char** argv) {
  std::int64_t rtt_us = 500;
  std::int64_t batch = 4;
  std::int64_t intra_us = 10;
  std::int64_t batches = 2000;
  std::int64_t fixed_delta_us = 64;
  std::int64_t epoch_ms = 64;
  double jitter = 0.05;  // lognormal sigma on the batch period
  std::int64_t seed = 1;

  FlagSet flags{"causally-triggered transmission estimator playground"};
  flags.add("rtt_us", &rtt_us, "true batch period (response latency), us");
  flags.add("batch", &batch, "packets per batch");
  flags.add("intra_us", &intra_us, "gap between packets within a batch, us");
  flags.add("batches", &batches, "number of batches to generate");
  flags.add("fixed_delta_us", &fixed_delta_us, "Algorithm 1 timeout, us");
  flags.add("epoch_ms", &epoch_ms, "Algorithm 2 epoch, ms");
  flags.add("jitter", &jitter, "lognormal sigma on the batch period");
  flags.add("seed", &seed, "rng seed");
  if (!flags.parse(argc, argv)) return 1;

  // Generate arrivals.
  Rng rng{static_cast<std::uint64_t>(seed)};
  std::vector<SimTime> arrivals;
  SimTime t = 0;
  for (std::int64_t b = 0; b < batches; ++b) {
    for (std::int64_t p = 0; p < batch; ++p) {
      arrivals.push_back(t + p * us(intra_us));
    }
    const double period = rng.lognormal_median(
        static_cast<double>(us(rtt_us)), jitter);
    t += static_cast<SimTime>(period);
  }

  FixedTimeout fixed{us(fixed_delta_us)};
  FixedTimeoutState fs;
  EnsembleConfig ecfg;
  ecfg.epoch = ms(epoch_ms);
  EnsembleTimeout ensemble{ecfg};
  EnsembleState es;

  CsvWriter csv{std::cout};
  csv.header("t_ms", "estimator", "sample_us", "delta_us");
  std::size_t fixed_n = 0;
  std::size_t ens_n = 0;
  double fixed_sum = 0;
  double ens_sum = 0;
  for (SimTime at : arrivals) {
    if (SimTime v = fixed.on_packet(fs, at); v != kNoTime) {
      csv.row(to_ms(at), "fixed", to_us(v), fixed_delta_us);
      ++fixed_n;
      fixed_sum += to_us(v);
    }
    if (SimTime v = ensemble.on_packet(es, at); v != kNoTime) {
      csv.row(to_ms(at), "ensemble", to_us(v),
              to_us(ensemble.current_delta(es)));
      ++ens_n;
      ens_sum += to_us(v);
    }
  }

  std::fprintf(stderr, "true period: %lldus over %lld batches\n",
               static_cast<long long>(rtt_us),
               static_cast<long long>(batches));
  std::fprintf(stderr, "fixed(delta=%lldus): %zu samples, mean %.1fus\n",
               static_cast<long long>(fixed_delta_us), fixed_n,
               fixed_n ? fixed_sum / static_cast<double>(fixed_n) : 0.0);
  std::fprintf(stderr, "ensemble: %zu samples, mean %.1fus, final delta %.0fus\n",
               ens_n, ens_n ? ens_sum / static_cast<double>(ens_n) : 0.0,
               to_us(ensemble.current_delta(es)));
  return 0;
}
